package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/predicate"
	"repro/internal/txn"
)

// RunE5 — promise-checking cost per view as the promise table grows.
// Claim (§8): named checking is a duplicate/availability test, anonymous
// checking sums quantities, property checking needs graph matching — three
// distinct cost classes.
func RunE5(quick bool) (*Table, error) {
	sizes := []int{10, 100, 1000}
	if quick {
		sizes = []int{10, 100}
	}
	tbl := &Table{
		ID:      "E5",
		Title:   "grant latency vs outstanding promises, per resource view",
		Claim:   "§8: per-view promise checking algorithms have different cost classes",
		Columns: []string{"outstanding", "named µs/grant", "anonymous µs/grant", "property µs/grant"},
	}
	for _, n := range sizes {
		named, err := e5Named(n)
		if err != nil {
			return nil, err
		}
		anon, err := e5Anonymous(n)
		if err != nil {
			return nil, err
		}
		prop, err := e5Property(n)
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", named),
			fmt.Sprintf("%.0f", anon),
			fmt.Sprintf("%.0f", prop),
		})
	}
	tbl.Notes = "expected shape: property grows fastest (matching), anonymous linear (sweep+sums), named cheapest"
	return tbl, nil
}

func e5Named(n int) (float64, error) {
	m, err := core.New(core.Config{DefaultDuration: time.Hour})
	if err != nil {
		return 0, err
	}
	tx := m.Store().Begin(txn.Block)
	for i := 0; i < n+20; i++ {
		if err := m.Resources().CreateInstance(tx, fmt.Sprintf("i%06d", i), nil); err != nil {
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		resp, err := m.Execute(context.Background(), core.Request{Client: "seed", PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Named(fmt.Sprintf("i%06d", i))},
		}}})
		if err != nil {
			return 0, err
		}
		if !resp.Promises[0].Accepted {
			return 0, fmt.Errorf("seed grant %d rejected", i)
		}
	}
	return timeGrants(20, func(k int) core.Request {
		return core.Request{Client: "probe", PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Named(fmt.Sprintf("i%06d", n+k))},
		}}}
	}, m)
}

func e5Anonymous(n int) (float64, error) {
	m, err := newPromiseWorld(map[string]int64{"p": 1 << 40}, core.Config{DefaultDuration: time.Hour})
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := m.Execute(context.Background(), requestQty("seed", "p", 1)); err != nil {
			return 0, err
		}
	}
	return timeGrants(20, func(k int) core.Request {
		return requestQty("probe", "p", 1)
	}, m)
}

func e5Property(n int) (float64, error) {
	m, err := core.New(core.Config{DefaultDuration: time.Hour})
	if err != nil {
		return 0, err
	}
	tx := m.Store().Begin(txn.Block)
	for i := 0; i < n+20; i++ {
		props := map[string]predicate.Value{"slot": predicate.Int(int64(i))}
		if err := m.Resources().CreateInstance(tx, fmt.Sprintf("r%06d", i), props); err != nil {
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		resp, err := m.Execute(context.Background(), core.Request{Client: "seed", PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.MustProperty(fmt.Sprintf("slot >= 0 and slot <= %d", n+20))},
		}}})
		if err != nil {
			return 0, err
		}
		if !resp.Promises[0].Accepted {
			return 0, fmt.Errorf("property seed %d rejected", i)
		}
	}
	return timeGrants(5, func(k int) core.Request {
		return core.Request{Client: "probe", PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.MustProperty("slot >= 0")},
		}}}
	}, m)
}

func requestQty(client, pool string, qty int64) core.Request {
	return core.Request{Client: client, PromiseRequests: []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pool, qty)},
	}}}
}

// timeGrants measures microseconds per granted request.
func timeGrants(k int, mk func(int) core.Request, m *core.Manager) (float64, error) {
	start := time.Now()
	for i := 0; i < k; i++ {
		resp, err := m.Execute(context.Background(), mk(i))
		if err != nil {
			return 0, err
		}
		if !resp.Promises[0].Accepted {
			return 0, fmt.Errorf("probe grant rejected: %s", resp.Promises[0].Reason)
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(k), nil
}

// RunE6 — bipartite matching cost and grant rate for property views.
// Claim (§5/§9): property-view satisfiability "can require a graph
// matching algorithm"; Hopcroft–Karp keeps it tractable at realistic pool
// sizes.
func RunE6(quick bool) (*Table, error) {
	sizes := []int{100, 1000, 5000}
	if quick {
		sizes = []int{100, 1000}
	}
	tbl := &Table{
		ID:      "E6",
		Title:   "Hopcroft–Karp matching cost on promise/instance graphs (5 candidates per promise)",
		Claim:   "§5/§9: property-view checking is graph matching, not logical satisfiability",
		Columns: []string{"promises x instances", "edges", "matching ms", "saturated"},
	}
	r := rand.New(rand.NewSource(7))
	for _, n := range sizes {
		g := matching.NewGraph(n, n)
		edges := 0
		for l := 0; l < n; l++ {
			g.AddEdge(l, l) // guarantee feasibility
			edges++
			for k := 0; k < 4; k++ {
				g.AddEdge(l, r.Intn(n))
				edges++
			}
		}
		start := time.Now()
		_, ok := g.SaturatesLeft()
		ms := time.Since(start).Seconds() * 1000
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%dx%d", n, n),
			fmt.Sprintf("%d", edges),
			fmt.Sprintf("%.2f", ms),
			fmt.Sprintf("%v", ok),
		})
	}
	tbl.Notes = "expected shape: near-linear growth in edges; full saturation at every size"
	return tbl, nil
}

// RunE7 — tentative allocation (matching) vs naive first-fit grant rate.
// Claim (§5): rearranging tentative allocations admits promise sets that a
// fixed first-fit assignment rejects.
func RunE7(quick bool) (*Table, error) {
	trials := 200
	if quick {
		trials = 60
	}
	roomCounts := []int{4, 8, 16}
	tbl := &Table{
		ID:      "E7",
		Title:   "grant rate on overlapping hotel predicates (random arrival orders)",
		Claim:   "§5: tentative allocation + reallocation grants more than naive first-fit",
		Columns: []string{"rooms", "mode", "granted", "offered", "grant rate"},
	}
	for _, rooms := range roomCounts {
		for _, mode := range []core.PropertyMode{core.MatchingMode, core.FirstFitMode} {
			granted, offered, err := e7Run(rooms, trials, mode)
			if err != nil {
				return nil, err
			}
			name := "matching"
			if mode == core.FirstFitMode {
				name = "first-fit"
			}
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%d", rooms), name,
				fmt.Sprintf("%d", granted), fmt.Sprintf("%d", offered),
				fmt.Sprintf("%.1f%%", 100*float64(granted)/float64(offered)),
			})
		}
	}
	tbl.Notes = "expected shape: matching grant rate strictly above first-fit; gap widens with overlap"
	return tbl, nil
}

// e7Run replays `trials` random hotel workloads. Half the rooms have a
// view, half are on the 5th floor (with one overlap room having both);
// promise requests alternate between "view" and "floor = 5" in random
// order until rejection, counting grants.
func e7Run(rooms, trials int, mode core.PropertyMode) (granted, offered int, err error) {
	r := rand.New(rand.NewSource(int64(rooms)*31 + 7))
	for trial := 0; trial < trials; trial++ {
		m, err := core.New(core.Config{PropertyMode: mode, DefaultDuration: time.Hour})
		if err != nil {
			return 0, 0, err
		}
		tx := m.Store().Begin(txn.Block)
		for i := 0; i < rooms; i++ {
			props := map[string]predicate.Value{
				// Every room has exactly one of the two features except
				// room 0, which has both (the paper's room 512).
				"view":  predicate.Bool(i%2 == 0),
				"floor": predicate.Int(int64(3 + 2*(i%2))), // 3 or 5
			}
			if i == 0 {
				props["floor"] = predicate.Int(5)
			}
			if err := m.Resources().CreateInstance(tx, fmt.Sprintf("room-%03d", i), props); err != nil {
				return 0, 0, err
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, 0, err
		}
		preds := []string{"view = true", "floor = 5"}
		for i := 0; i < rooms; i++ {
			expr := preds[r.Intn(2)]
			offered++
			resp, err := m.Execute(context.Background(), core.Request{Client: "c", PromiseRequests: []core.PromiseRequest{{
				Predicates: []core.Predicate{core.MustProperty(expr)},
			}}})
			if err != nil {
				return 0, 0, err
			}
			if resp.Promises[0].Accepted {
				granted++
			}
		}
	}
	return granted, offered, nil
}
