package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// The experiment suite is the reproduction's evaluation; these tests run
// every experiment in quick mode and assert the *shape* claims recorded in
// EXPERIMENTS.md, so a regression in the system shows up as a failed shape.

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d) in %+v", tbl.ID, row, col, tbl.Rows)
	}
	return tbl.Rows[row][col]
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return n
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x"), 64)
	if err != nil {
		t.Fatalf("not a float: %q", s)
	}
	return f
}

func TestE1PromisesBeatLockingAtLongHolds(t *testing.T) {
	tbl, err := RunE1(true)
	if err != nil {
		t.Fatal(err)
	}
	tbl.Fprint(bytes.NewBuffer(nil))
	// At the longest hold, promises must be at least 2x locking.
	last := len(tbl.Rows) - 1
	speedup := atof(t, cell(t, tbl, last, 3))
	if speedup < 2 {
		t.Fatalf("E1 shape broken: speedup at longest hold = %.2f, want >= 2", speedup)
	}
}

func TestE2PromisesScaleWithClients(t *testing.T) {
	tbl, err := RunE2(true)
	if err != nil {
		t.Fatal(err)
	}
	// At 16 clients promises must beat locking (which is pinned at ~1/hold).
	last := len(tbl.Rows) - 1
	lock := atof(t, cell(t, tbl, last, 1))
	prom := atof(t, cell(t, tbl, last, 2))
	if prom < 2*lock {
		t.Fatalf("E2 shape broken: promises %.0f vs locking %.0f at max clients", prom, lock)
	}
}

func TestE3PromisesNeverFailLate(t *testing.T) {
	tbl, err := RunE3(true)
	if err != nil {
		t.Fatal(err)
	}
	sawCTALate := false
	for _, row := range tbl.Rows {
		if row[1] == "promises" && row[4] != "0" {
			t.Fatalf("E3 shape broken: promises row has %s late failures", row[4])
		}
		if row[1] == "check-then-act" && row[4] != "0" {
			sawCTALate = true
		}
	}
	if !sawCTALate {
		t.Log("warning: check-then-act produced no late failures in quick mode (timing-dependent)")
	}
}

func TestE4PromisesNeverDeadlock(t *testing.T) {
	tbl, err := RunE4(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "0" {
			t.Fatalf("E4 shape broken: promises deadlocked %s times", row[3])
		}
		if fulfilled := atoi(t, row[4]); fulfilled == 0 {
			t.Fatalf("E4: promises fulfilled nothing at %s pairs", row[0])
		}
	}
}

func TestE5CostsReported(t *testing.T) {
	tbl, err := RunE5(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 2 {
		t.Fatalf("E5 rows = %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		for col := 1; col <= 3; col++ {
			if atof(t, row[col]) <= 0 {
				t.Fatalf("E5: non-positive latency %q in row %v", row[col], row)
			}
		}
	}
}

func TestE6MatchingSaturates(t *testing.T) {
	tbl, err := RunE6(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[3] != "true" {
			t.Fatalf("E6 shape broken: graph %s not saturated", row[0])
		}
	}
}

func TestE7MatchingBeatsFirstFit(t *testing.T) {
	tbl, err := RunE7(true)
	if err != nil {
		t.Fatal(err)
	}
	// Rows come in (matching, first-fit) pairs per room count.
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		matchRate := atof(t, cell(t, tbl, i, 4))
		fitRate := atof(t, cell(t, tbl, i+1, 4))
		if matchRate < fitRate {
			t.Fatalf("E7 shape broken at %s rooms: matching %.1f%% < first-fit %.1f%%",
				tbl.Rows[i][0], matchRate, fitRate)
		}
	}
}

func TestE8AtomicModifyNeverLosesEverything(t *testing.T) {
	tbl, err := RunE8(true)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tbl, 0, 0) != "atomic-modify" {
		t.Fatalf("row order changed: %v", tbl.Rows)
	}
	if cell(t, tbl, 0, 3) != "0" {
		t.Fatalf("E8 shape broken: atomic modify lost everything %s times", cell(t, tbl, 0, 3))
	}
	// The naive strategy's lost count is timing-dependent; upgraded+kept+
	// lost must account for all rounds in both rows.
}

func TestE9AblationBreaksInvariant(t *testing.T) {
	tbl, err := RunE9(true)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, tbl, 0, 3) != "HELD" {
		t.Fatalf("E9 shape broken: post-check enabled but invariant %q", cell(t, tbl, 0, 3))
	}
	if cell(t, tbl, 0, 2) != "0" {
		// With the check on, some drains may legitimately commit while
		// unpromised capacity remains (100-80=20 allows 6 drains of 3).
		if atoi(t, cell(t, tbl, 0, 2)) > 6 {
			t.Fatalf("E9: too many committed drains with post-check on: %s", cell(t, tbl, 0, 2))
		}
	}
	if !strings.HasPrefix(cell(t, tbl, 1, 3), "BROKEN") {
		t.Fatalf("E9 shape broken: ablation kept invariant %q", cell(t, tbl, 1, 3))
	}
}

func TestE10PiggybackSaves(t *testing.T) {
	tbl, err := RunE10(true)
	if err != nil {
		t.Fatal(err)
	}
	var saving string
	for _, row := range tbl.Rows {
		if row[0] == "piggyback saving" {
			saving = row[1]
		}
	}
	if saving == "" {
		t.Fatal("no piggyback saving row")
	}
	if atof(t, saving) <= 0 {
		t.Fatalf("E10 shape broken: piggyback saving %s", saving)
	}
}

func TestE11DelegationSucceedsAtAllDepths(t *testing.T) {
	tbl, err := RunE11(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[1] != "true" {
			t.Fatalf("E11 shape broken: depth %s grant failed", row[0])
		}
	}
}

func TestRegistryAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 11 || ids[0] != "E1" || ids[10] != "E11" {
		t.Fatalf("IDs() = %v", ids)
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("no runner for %s", id)
		}
	}
}

func TestTableFprint(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "t", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   "n",
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "claim: c", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint missing %q:\n%s", want, out)
		}
	}
}
