package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/txn"
)

// RunE8 — atomic promise modification vs naive release-then-request.
// Claim (§4): "it would be too restrictive to force the service to honour
// the new guarantee as well as the previous one, nor would the client want
// to release the previous one until the new one was obtained" — the naive
// sequence opens a window where a rival takes the capacity and the client
// ends up with no guarantee at all.
func RunE8(quick bool) (*Table, error) {
	rounds := 300
	if quick {
		rounds = 80
	}
	tbl := &Table{
		ID:      "E8",
		Title:   "upgrading a $100 promise to $200 under contention (pool 200)",
		Claim:   "§4: modify must be atomic; release-then-request can strand the client with nothing",
		Columns: []string{"strategy", "upgraded", "kept old", "lost everything"},
	}
	for _, strategy := range []string{"atomic-modify", "release-then-request"} {
		var upgraded, keptOld, lost atomic.Int64
		for i := 0; i < rounds; i++ {
			m, err := newPromiseWorld(map[string]int64{"acct": 200}, core.Config{DefaultDuration: time.Hour})
			if err != nil {
				return nil, err
			}
			resp, err := m.Execute(context.Background(), requestQty("shop", "acct", 100))
			if err != nil {
				return nil, err
			}
			old := resp.Promises[0]
			// A rival races for 150 while the shop upgrades 100 -> 200.
			// Random jitter on both sides makes the interleaving genuine;
			// in a real deployment the gap between the shop's two messages
			// is a network round trip.
			var wg sync.WaitGroup
			wg.Add(2)
			jitter := func(i int) { time.Sleep(time.Duration(i%7) * 40 * time.Microsecond) }
			go func() {
				defer wg.Done()
				jitter(i + 3)
				_, _ = m.Execute(context.Background(), requestQty("rival", "acct", 150))
			}()
			go func() {
				defer wg.Done()
				jitter(i)
				switch strategy {
				case "atomic-modify":
					resp, err := m.Execute(context.Background(), core.Request{Client: "shop", PromiseRequests: []core.PromiseRequest{{
						Predicates: []core.Predicate{core.Quantity("acct", 200)},
						Releases:   []string{old.PromiseID},
					}}})
					if err != nil {
						lost.Add(1)
						return
					}
					if resp.Promises[0].Accepted {
						upgraded.Add(1)
					} else {
						keptOld.Add(1) // old promise retained on rejection
					}
				default:
					// Naive: release first, then request the bigger promise.
					// The window between the two messages is where the
					// rival can take the freed capacity.
					if _, err := m.Execute(context.Background(), core.Request{Client: "shop",
						Env: []core.EnvEntry{{PromiseID: old.PromiseID, Release: true}}}); err != nil {
						lost.Add(1)
						return
					}
					time.Sleep(120 * time.Microsecond)
					resp, err := m.Execute(context.Background(), requestQty("shop", "acct", 200))
					if err != nil {
						lost.Add(1)
						return
					}
					if resp.Promises[0].Accepted {
						upgraded.Add(1)
					} else {
						lost.Add(1) // old gone, new rejected: no guarantee left
					}
				}
			}()
			wg.Wait()
		}
		tbl.Rows = append(tbl.Rows, []string{
			strategy,
			fmt.Sprintf("%d", upgraded.Load()),
			fmt.Sprintf("%d", keptOld.Load()),
			fmt.Sprintf("%d", lost.Load()),
		})
	}
	tbl.Notes = "expected shape: atomic-modify never loses everything; the naive strategy does whenever the rival wins the race"
	return tbl, nil
}

// RunE9 — the post-action check ablation. Claim (§8): "the promise manager
// cannot rely on the application code being always well-behaved, so the
// promise manager also has to check for consistency after an action"; with
// the check disabled, ill-behaved actions corrupt promised availability.
func RunE9(quick bool) (*Table, error) {
	rogues := 50
	if quick {
		rogues = 15
	}
	tbl := &Table{
		ID:      "E9",
		Title:   "50 rogue drain actions against a pool with an 80% promise outstanding",
		Claim:   "§8: post-action checking catches ill-behaved applications; the ablation silently breaks promises",
		Columns: []string{"post-check", "actions rolled back", "actions committed", "final invariant"},
	}
	for _, disable := range []bool{false, true} {
		m, err := newPromiseWorld(map[string]int64{"stock": 100}, core.Config{
			DisablePostCheck: disable, DefaultDuration: time.Hour,
		})
		if err != nil {
			return nil, err
		}
		if _, err := m.Execute(context.Background(), requestQty("holder", "stock", 80)); err != nil {
			return nil, err
		}
		var rolledBack, committed int
		for i := 0; i < rogues; i++ {
			resp, err := m.Execute(context.Background(), core.Request{
				Client: "rogue",
				Action: func(ac *core.ActionContext) (any, error) {
					_, err := ac.Resources.AdjustPool(ac.Tx, "stock", -3)
					return nil, err
				},
			})
			if err != nil {
				return nil, err
			}
			if resp.ActionErr != nil {
				rolledBack++
			} else {
				committed++
			}
		}
		// Final invariant: on-hand must cover the outstanding promise.
		tx := m.Store().Begin(txn.Block)
		p, err := m.Resources().Pool(tx, "stock")
		if err != nil {
			return nil, err
		}
		_ = tx.Commit()
		invariant := "HELD"
		if p.OnHand < 80 {
			invariant = fmt.Sprintf("BROKEN (on hand %d < promised 80)", p.OnHand)
		}
		mode := "enabled"
		if disable {
			mode = "disabled (ablation)"
		}
		tbl.Rows = append(tbl.Rows, []string{
			mode, fmt.Sprintf("%d", rolledBack), fmt.Sprintf("%d", committed), invariant,
		})
	}
	tbl.Notes = "expected shape: enabled = all violating drains rolled back, invariant HELD; disabled = drains commit until the pool is under-promised"
	return tbl, nil
}

// RunE10 — protocol overhead and the value of piggybacking. Claim (§2,
// §6): promise elements ride in message headers; combining a promise
// release with the application request halves the message count of the
// purchase step.
func RunE10(quick bool) (*Table, error) {
	iters := 2000
	httpIters := 150
	if quick {
		iters = 400
		httpIters = 50
	}
	tbl := &Table{
		ID:      "E10",
		Title:   "protocol envelope cost and piggybacked vs separate messages",
		Claim:   "§6: promise headers are cheap; piggybacking release+action saves a round trip",
		Columns: []string{"metric", "value"},
	}
	// Envelope encode/decode microbenchmarks at three predicate counts.
	for _, n := range []int{1, 10, 100} {
		env := &protocol.Envelope{Header: protocol.Header{Client: "c", Promise: &protocol.PromiseHeader{}}}
		for i := 0; i < n; i++ {
			env.Header.Promise.Requests = append(env.Header.Promise.Requests, protocol.WireRequest{
				ID: fmt.Sprintf("r%d", i),
				Predicates: []protocol.WirePredicate{
					{View: "anonymous", Pool: "pink-widgets", Qty: 5},
				},
			})
		}
		var buf bytes.Buffer
		start := time.Now()
		for i := 0; i < iters; i++ {
			buf.Reset()
			if err := protocol.Encode(&buf, env); err != nil {
				return nil, err
			}
			if _, err := protocol.Decode(bytes.NewReader(buf.Bytes())); err != nil {
				return nil, err
			}
		}
		per := time.Since(start) / time.Duration(iters)
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("encode+decode, %d requests", n),
			fmt.Sprintf("%v (%d bytes)", per, buf.Len()),
		})
	}

	// Piggybacked vs separate purchase over a live server.
	m, err := newPromiseWorld(map[string]int64{"w": 1 << 40}, core.Config{DefaultDuration: time.Hour})
	if err != nil {
		return nil, err
	}
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	srv := httptest.NewServer(transport.NewServer(m, reg).Handler())
	defer srv.Close()
	c := &transport.Client{BaseURL: srv.URL, Client: "c"}

	grantIDs := make([]string, 0, 2*httpIters)
	for i := 0; i < 2*httpIters; i++ {
		pr, err := c.RequestPromise(context.Background(), []core.Predicate{core.Quantity("w", 1)}, time.Hour)
		if err != nil || !pr.Accepted {
			return nil, fmt.Errorf("seed grant: %v %v", pr, err)
		}
		grantIDs = append(grantIDs, pr.PromiseID)
	}
	// Separate: action message then release message (2 round trips).
	start := time.Now()
	for i := 0; i < httpIters; i++ {
		id := grantIDs[i]
		if _, err := c.Invoke(context.Background(), []core.EnvEntry{{PromiseID: id}}, "adjust-pool",
			map[string]string{"pool": "w", "delta": "-1"}); err != nil {
			return nil, err
		}
		if err := c.Release(context.Background(), "", id); err != nil {
			return nil, err
		}
	}
	separate := time.Since(start) / time.Duration(httpIters)
	// Piggybacked: one message with release option set (1 round trip).
	start = time.Now()
	for i := 0; i < httpIters; i++ {
		id := grantIDs[httpIters+i]
		if _, err := c.Invoke(context.Background(), []core.EnvEntry{{PromiseID: id, Release: true}}, "adjust-pool",
			map[string]string{"pool": "w", "delta": "-1"}); err != nil {
			return nil, err
		}
	}
	piggy := time.Since(start) / time.Duration(httpIters)
	tbl.Rows = append(tbl.Rows,
		[]string{"purchase+release, separate messages", separate.String()},
		[]string{"purchase+release, piggybacked", piggy.String()},
		[]string{"piggyback saving", fmt.Sprintf("%.1f%%", 100*(1-float64(piggy)/float64(separate)))},
	)
	tbl.Notes = "expected shape: piggybacked ≈ half the separate-message latency (one round trip instead of two)"
	return tbl, nil
}

// RunE11 — delegation chains. Claim (§5): promises can be backed by the
// promises of third parties (merchant → distributor → …); grants succeed
// across the chain and latency grows linearly with depth.
func RunE11(quick bool) (*Table, error) {
	depths := []int{1, 2, 4, 8}
	if quick {
		depths = []int{1, 2, 4}
	}
	tbl := &Table{
		ID:      "E11",
		Title:   "delegated grants across supplier chains (stock only at the chain's far end)",
		Claim:   "§5: a promise can rely on the promises of third parties",
		Columns: []string{"chain depth", "grant ok", "µs/grant+release", "upstream promises created"},
	}
	for _, depth := range depths {
		// Build chain: m[0] is the merchant, m[depth] holds all stock.
		managers := make([]*core.Manager, depth+1)
		var err error
		managers[depth], err = newPromiseWorld(map[string]int64{"w": 1 << 30}, core.Config{DefaultDuration: time.Hour})
		if err != nil {
			return nil, err
		}
		for i := depth - 1; i >= 0; i-- {
			managers[i], err = newPromiseWorld(map[string]int64{"w": 0}, core.Config{
				DefaultDuration: time.Hour,
				Suppliers: map[string]core.Supplier{
					"w": &core.ManagerSupplier{M: managers[i+1], Client: fmt.Sprintf("tier-%d", i)},
				},
			})
			if err != nil {
				return nil, err
			}
		}
		const k = 20
		start := time.Now()
		ok := true
		for i := 0; i < k; i++ {
			resp, err := managers[0].Execute(context.Background(), requestQty("customer", "w", 5))
			if err != nil {
				return nil, err
			}
			pr := resp.Promises[0]
			if !pr.Accepted {
				ok = false
				break
			}
			if _, err := managers[0].Execute(context.Background(), core.Request{
				Client: "customer",
				Env:    []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
			}); err != nil {
				return nil, err
			}
		}
		per := float64(time.Since(start).Microseconds()) / float64(k)
		// Count upstream promise traffic at the deepest tier.
		var upstream int
		all, err := allPromiseCount(managers[depth])
		if err != nil {
			return nil, err
		}
		upstream = all
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%d", depth),
			fmt.Sprintf("%v", ok),
			fmt.Sprintf("%.0f", per),
			fmt.Sprintf("%d", upstream),
		})
	}
	tbl.Notes = "expected shape: grants succeed at every depth; latency grows roughly linearly with depth"
	return tbl, nil
}

// allPromiseCount counts every promise row (any state) in m's tables.
func allPromiseCount(m *core.Manager) (int, error) {
	tx := m.Store().Begin(txn.Block)
	defer tx.Commit()
	n := 0
	for _, tbl := range []string{core.TablePromises, core.TablePromisesDone} {
		if err := tx.Scan(tbl, func(string, txn.Row) bool {
			n++
			return true
		}); err != nil {
			return 0, err
		}
	}
	return n, nil
}
