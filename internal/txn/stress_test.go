package txn

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestLockManagerStressNoLostWakeups hammers the lock manager with
// goroutines acquiring random lock sets in random orders under the Block
// policy, aborting and retrying on deadlock. Every worker must finish: a
// lost wakeup or an undetected deadlock would hang the test (guarded by a
// timeout watchdog).
func TestLockManagerStressNoLostWakeups(t *testing.T) {
	lm := NewLockManager()
	locks := []string{"a", "b", "c", "d", "e"}
	modes := []Mode{IS, IX, S, X}
	const workers, rounds = 12, 60

	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			id := uint64(1000 + w)
			for round := 0; round < rounds; round++ {
				n := 1 + r.Intn(3)
				ok := true
				for i := 0; i < n; i++ {
					name := locks[r.Intn(len(locks))]
					mode := modes[r.Intn(len(modes))]
					if err := lm.Acquire(id, name, mode, Block); err != nil {
						if errors.Is(err, ErrDeadlock) {
							ok = false
							break
						}
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
				_ = ok
				lm.ReleaseAll(id)
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("lock manager stress hung: lost wakeup or undetected deadlock")
	}
}

// TestStoreStressMixedWorkload runs concurrent random transactions (reads,
// writes, scans, deletes, savepoint rollbacks, aborts) and then verifies
// the store still serves a consistent full scan.
func TestStoreStressMixedWorkload(t *testing.T) {
	s := newTestStore(t, "t")
	seedTx := s.Begin(Block)
	for i := 0; i < 10; i++ {
		if err := seedTx.Put("t", fmt.Sprintf("k%d", i), &intRow{n: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seedTx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 17))
			for round := 0; round < 40; round++ {
				tx := s.Begin(Block)
				aborted := false
				for op := 0; op < 4; op++ {
					key := fmt.Sprintf("k%d", r.Intn(10))
					var err error
					switch r.Intn(5) {
					case 0:
						_, err = tx.Get("t", key)
						if errors.Is(err, ErrNotFound) {
							err = nil
						}
					case 1:
						err = tx.Put("t", key, &intRow{n: int64(round)})
					case 2:
						err = tx.Scan("t", func(string, Row) bool { return true })
					case 3:
						sp := tx.Savepoint()
						err = tx.Put("t", key, &intRow{n: -1})
						if err == nil {
							err = tx.RollbackTo(sp)
						}
					case 4:
						err = tx.Delete("t", key)
						if errors.Is(err, ErrNotFound) {
							err = nil
						}
					}
					if errors.Is(err, ErrDeadlock) {
						_ = tx.Abort()
						aborted = true
						break
					}
					if err != nil {
						t.Errorf("worker %d: %v", w, err)
						_ = tx.Abort()
						return
					}
				}
				if aborted {
					continue
				}
				if r.Intn(4) == 0 {
					_ = tx.Abort()
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// The store must still serve a clean scan with sane values.
	check := s.Begin(Block)
	defer check.Commit()
	err := check.Scan("t", func(key string, row Row) bool {
		if row.(*intRow).n == -1 {
			t.Errorf("savepoint-rolled-back value leaked at %s", key)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}
