package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

type testRow struct{ v int }

func (r *testRow) CloneRow() Row { c := *r; return &c }

func snapVal(t *testing.T, s *Snapshot, tbl, key string) (int, bool) {
	t.Helper()
	row, err := s.Get(tbl, key)
	if errors.Is(err, ErrNotFound) {
		return 0, false
	}
	if err != nil {
		t.Fatal(err)
	}
	return row.(*testRow).v, true
}

func TestSnapshotReflectsCommits(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Len("t"); got != 0 {
		t.Fatalf("fresh table Len = %d", got)
	}

	tx := s.Begin(Block)
	if err := tx.Put("t", "a", &testRow{v: 1}); err != nil {
		t.Fatal(err)
	}
	// Uncommitted writes must not leak into snapshots.
	if _, ok := snapVal(t, s.Snapshot(), "t", "a"); ok {
		t.Fatal("uncommitted write visible in snapshot")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if v, ok := snapVal(t, s.Snapshot(), "t", "a"); !ok || v != 1 {
		t.Fatalf("after commit: v=%d ok=%v", v, ok)
	}

	// An aborted transaction publishes nothing.
	before := s.Snapshot()
	tx2 := s.Begin(Block)
	if err := tx2.Put("t", "a", &testRow{v: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot() != before {
		t.Fatal("abort published a snapshot")
	}
	if v, _ := snapVal(t, s.Snapshot(), "t", "a"); v != 1 {
		t.Fatalf("after abort: v=%d", v)
	}

	// Deletes are reflected; old snapshots are immutable.
	old := s.Snapshot()
	tx3 := s.Begin(Block)
	if err := tx3.Delete("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := snapVal(t, s.Snapshot(), "t", "a"); ok {
		t.Fatal("deleted key still visible in fresh snapshot")
	}
	if v, ok := snapVal(t, old, "t", "a"); !ok || v != 1 {
		t.Fatalf("retained snapshot changed: v=%d ok=%v", v, ok)
	}
	if old.Version() >= s.Snapshot().Version() {
		t.Fatalf("versions not increasing: %d >= %d", old.Version(), s.Snapshot().Version())
	}
}

func TestSnapshotScanSortedAndCloned(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(Block)
	for i := 0; i < 40; i++ {
		if err := tx.Put("t", fmt.Sprintf("k%02d", i), &testRow{v: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Len("t") != 40 {
		t.Fatalf("Len = %d", snap.Len("t"))
	}
	var keys []string
	var first *testRow
	err := snap.Scan("t", func(key string, row Row) bool {
		if first == nil {
			first = row.(*testRow)
		}
		keys = append(keys, key)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("scan not sorted: %q >= %q", keys[i-1], keys[i])
		}
	}
	// Scan hands out clones: mutating one must not corrupt the snapshot.
	first.v = 999
	if v, _ := snapVal(t, snap, "t", "k00"); v != 0 {
		t.Fatalf("snapshot aliased by scan result: v=%d", v)
	}
}

func TestSnapshotEpochSourceAndHook(t *testing.T) {
	s := NewStore()
	var epoch uint64 = 100
	s.SetEpochSource(func() uint64 { return epoch })
	var hookCalls int
	var lastTouched []TableKey
	s.SetCommitHook(func(snap *Snapshot, touched []TableKey) {
		hookCalls++
		lastTouched = touched
	})
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	tx := s.Begin(Block)
	if err := tx.Put("t", "a", &testRow{v: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("t", "a", &testRow{v: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("t", "b", &testRow{v: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshot().Epoch(); got != 100 {
		t.Fatalf("Epoch = %d, want 100", got)
	}
	if hookCalls != 1 {
		t.Fatalf("hook calls = %d", hookCalls)
	}
	if len(lastTouched) != 2 { // a deduped, b
		t.Fatalf("touched = %v", lastTouched)
	}

	// A read-only commit publishes nothing and does not call the hook.
	v := s.Snapshot().Version()
	tx2 := s.Begin(Block)
	if _, err := tx2.Get("t", "a"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().Version() != v || hookCalls != 1 {
		t.Fatalf("read-only commit published (version %d -> %d, hooks %d)", v, s.Snapshot().Version(), hookCalls)
	}
}

// TestSnapshotConcurrentReadersNeverTorn hammers one key range with
// writers committing multi-key transactions while readers assert every
// snapshot shows a transactionally consistent pair (the store's writers
// always keep t/x == t/y).
func TestSnapshotConcurrentReadersNeverTorn(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	init := s.Begin(Block)
	if err := init.Put("t", "x", &testRow{v: 0}); err != nil {
		t.Fatal(err)
	}
	if err := init.Put("t", "y", &testRow{v: 0}); err != nil {
		t.Fatal(err)
	}
	if err := init.Commit(); err != nil {
		t.Fatal(err)
	}

	const writers, rounds = 4, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				tx := s.Begin(Block)
				row, err := tx.Get("t", "x")
				if err != nil {
					t.Error(err)
					return
				}
				v := row.(*testRow).v + 1
				if err := tx.Put("t", "x", &testRow{v: v}); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Put("t", "y", &testRow{v: v}); err != nil {
					t.Error(err)
					return
				}
				if err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < 4; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				x, okx := snapVal(t, snap, "t", "x")
				y, oky := snapVal(t, snap, "t", "y")
				if !okx || !oky || x != y {
					t.Errorf("torn snapshot: x=%d(%v) y=%d(%v)", x, okx, y, oky)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if x, _ := snapVal(t, s.Snapshot(), "t", "x"); x != writers*rounds {
		t.Fatalf("final x = %d, want %d", x, writers*rounds)
	}
}
