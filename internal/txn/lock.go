// Package txn is the local ACID transaction substrate required by the
// prototype architecture of paper §8: "The solution we adopted here was to
// wrap each promise operation in a transaction … all accesses to the
// resource manager, as well as changes to the promise table are
// transactional, and this gives us the required level of isolation between
// concurrent activities. Note that the transaction is local to a trust
// domain and short-duration."
//
// The package provides:
//
//   - a hierarchical lock manager with the classic IS/IX/S/SIX/X modes and
//     waits-for-graph deadlock detection (victim = requester), and
//   - an in-memory multi-table store with per-transaction undo logs and
//     strict two-phase locking (all locks held to commit/abort).
//
// The same lock manager doubles as the long-duration lock service of the
// internal/baseline package, which models the "traditional lock-based
// isolation" the paper argues against for cross-service use (§1, §9).
package txn

import (
	"errors"
	"fmt"
	"sync"
)

// Mode is a lock mode in the standard hierarchical locking scheme.
type Mode int

// Lock modes, weakest to strongest.
const (
	None Mode = iota
	IS        // intention shared
	IX        // intention exclusive
	S         // shared
	SIX       // shared + intention exclusive
	X         // exclusive
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "NONE"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// compatible reports whether a holder in mode a permits a new grant in mode b.
func compatible(a, b Mode) bool {
	switch a {
	case IS:
		return b != X
	case IX:
		return b == IS || b == IX
	case S:
		return b == IS || b == S
	case SIX:
		return b == IS
	case X:
		return false
	}
	return true // None
}

// sup returns the least mode at least as strong as both a and b, used for
// lock upgrades (e.g. holding S and requesting IX yields SIX).
func sup(a, b Mode) Mode {
	if a == b {
		return a
	}
	if a > b {
		a, b = b, a
	}
	switch {
	case a == None:
		return b
	case a == IS:
		return b
	case a == IX && b == S:
		return SIX
	case a == IX:
		return b // SIX or X
	case a == S && b == SIX:
		return SIX
	case a == S:
		return X // S with IX handled above; S with X
	case a == SIX:
		return b // only X is above
	}
	return X
}

// Errors returned by lock acquisition.
var (
	// ErrDeadlock is returned to the transaction whose lock request would
	// close a cycle in the waits-for graph. The transaction should abort.
	ErrDeadlock = errors.New("txn: deadlock detected")
	// ErrWouldBlock is returned under WaitPolicy NoWait when the request
	// cannot be granted immediately. Promise managers use NoWait so that
	// "unfulfillable promise requests are rejected immediately rather than
	// blocking" (§9).
	ErrWouldBlock = errors.New("txn: lock not available")
	// ErrTxDone is returned when operating on a committed or aborted
	// transaction.
	ErrTxDone = errors.New("txn: transaction already finished")
)

// WaitPolicy selects blocking behaviour for lock requests.
type WaitPolicy int

// Wait policies.
const (
	// Block waits for the lock, subject to deadlock detection.
	Block WaitPolicy = iota
	// NoWait fails immediately with ErrWouldBlock if the lock is held
	// incompatibly.
	NoWait
)

// waiter is a queued lock request.
type waiter struct {
	tx    uint64
	mode  Mode
	ready chan error // receives nil on grant, ErrDeadlock on victimisation
}

// lockState tracks one lockable object.
type lockState struct {
	name    string
	granted map[uint64]Mode
	queue   []*waiter
}

// LockManager grants hierarchical locks to transactions identified by id.
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	// held tracks every lock name held per transaction, for ReleaseAll.
	held map[uint64]map[string]struct{}
	// waitsFor[t] is the set of transactions t is currently waiting on.
	waitsFor map[uint64]map[uint64]struct{}
}

// NewLockManager returns an empty LockManager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks:    make(map[string]*lockState),
		held:     make(map[uint64]map[string]struct{}),
		waitsFor: make(map[uint64]map[uint64]struct{}),
	}
}

// Acquire obtains the named lock in the given mode for transaction tx.
// Re-acquiring a held lock upgrades it to sup(current, mode). Under Block,
// the call parks until granted or until deadlock detection chooses tx as
// victim; under NoWait it returns ErrWouldBlock instead of parking.
func (lm *LockManager) Acquire(tx uint64, name string, mode Mode, policy WaitPolicy) error {
	lm.mu.Lock()
	ls := lm.locks[name]
	if ls == nil {
		ls = &lockState{name: name, granted: make(map[uint64]Mode)}
		lm.locks[name] = ls
	}
	cur := ls.granted[tx]
	want := sup(cur, mode)
	if want == cur && cur != None {
		lm.mu.Unlock()
		return nil // already strong enough
	}
	if lm.grantable(ls, tx, want) {
		ls.granted[tx] = want
		lm.noteHeld(tx, name)
		lm.mu.Unlock()
		return nil
	}
	if policy == NoWait {
		lm.mu.Unlock()
		return ErrWouldBlock
	}
	// Enqueue and build waits-for edges to every incompatible holder.
	w := &waiter{tx: tx, mode: want, ready: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	lm.addWaitEdges(ls, tx, want)
	if lm.cycleFrom(tx) {
		// tx is the victim: remove it from the queue and fail.
		lm.removeWaiter(ls, w)
		delete(lm.waitsFor, tx)
		lm.mu.Unlock()
		return ErrDeadlock
	}
	lm.mu.Unlock()

	err := <-w.ready
	return err
}

// grantable reports whether tx may hold `name` in mode want given current
// holders (ignoring tx's own grant, which is being upgraded). To preserve
// FIFO fairness, a fresh (non-upgrade) request is also blocked when earlier
// waiters are queued.
func (lm *LockManager) grantable(ls *lockState, tx uint64, want Mode) bool {
	for other, m := range ls.granted {
		if other == tx {
			continue
		}
		if !compatible(m, want) {
			return false
		}
	}
	// Upgrades jump the queue (standard treatment avoiding self-deadlock);
	// fresh requests respect FIFO order.
	if _, upgrading := ls.granted[tx]; !upgrading && len(ls.queue) > 0 {
		return false
	}
	return true
}

func (lm *LockManager) noteHeld(tx uint64, name string) {
	set := lm.held[tx]
	if set == nil {
		set = make(map[string]struct{})
		lm.held[tx] = set
	}
	set[name] = struct{}{}
}

// addWaitEdges records that tx waits on all holders incompatible with want
// and on earlier queued waiters whose requested mode conflicts.
func (lm *LockManager) addWaitEdges(ls *lockState, tx uint64, want Mode) {
	edges := lm.waitsFor[tx]
	if edges == nil {
		edges = make(map[uint64]struct{})
		lm.waitsFor[tx] = edges
	}
	for other, m := range ls.granted {
		if other != tx && !compatible(m, want) {
			edges[other] = struct{}{}
		}
	}
	for _, w := range ls.queue {
		if w.tx != tx && !compatible(w.mode, want) {
			edges[w.tx] = struct{}{}
		}
	}
}

// cycleFrom reports whether the waits-for graph has a cycle reachable from
// start that returns to start.
func (lm *LockManager) cycleFrom(start uint64) bool {
	seen := make(map[uint64]bool)
	var dfs func(u uint64) bool
	dfs = func(u uint64) bool {
		for v := range lm.waitsFor[u] {
			if v == start {
				return true
			}
			if !seen[v] {
				seen[v] = true
				if dfs(v) {
					return true
				}
			}
		}
		return false
	}
	return dfs(start)
}

func (lm *LockManager) removeWaiter(ls *lockState, w *waiter) {
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// ReleaseAll drops every lock held by tx and wakes any waiters that become
// grantable, in queue order.
func (lm *LockManager) ReleaseAll(tx uint64) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	names := lm.held[tx]
	delete(lm.held, tx)
	delete(lm.waitsFor, tx)
	for name := range names {
		ls := lm.locks[name]
		if ls == nil {
			continue
		}
		delete(ls.granted, tx)
		lm.wake(ls)
		if len(ls.granted) == 0 && len(ls.queue) == 0 {
			delete(lm.locks, name)
		}
	}
	// tx may also appear as a blocker in other transactions' edges; those
	// edges are now stale. They are rebuilt lazily: a stale edge can only
	// delay deadlock detection of future cycles, not cause a false positive,
	// because wake() below re-grants whatever became available. To keep the
	// graph tight we scrub tx from all edge sets.
	for _, edges := range lm.waitsFor {
		delete(edges, tx)
	}
}

// wake grants queued requests that are now compatible, preserving FIFO
// order: scanning stops at the first waiter that still cannot be granted,
// except that compatible waiters behind an incompatible one are not skipped
// (strict FIFO avoids starvation of writers).
func (lm *LockManager) wake(ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		cur := ls.granted[w.tx]
		want := sup(cur, w.mode)
		ok := true
		for other, m := range ls.granted {
			if other != w.tx && !compatible(m, want) {
				ok = false
				break
			}
		}
		if !ok {
			return
		}
		ls.queue = ls.queue[1:]
		ls.granted[w.tx] = want
		lm.noteHeld(w.tx, ls.name)
		delete(lm.waitsFor, w.tx)
		w.ready <- nil
	}
}

// HeldModes returns a snapshot of the modes tx currently holds, for tests.
func (lm *LockManager) HeldModes(tx uint64) map[string]Mode {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	out := make(map[string]Mode)
	for name := range lm.held[tx] {
		if ls := lm.locks[name]; ls != nil {
			if m, ok := ls.granted[tx]; ok {
				out[name] = m
			}
		}
	}
	return out
}
