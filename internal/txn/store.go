package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Row is a value stored in a table. Rows must be deep-copyable so that a
// transaction never aliases committed state: Get returns a clone, Put stores
// a clone.
type Row interface {
	// CloneRow returns a deep copy.
	CloneRow() Row
}

// ErrNotFound is returned by Get for a missing key.
var ErrNotFound = errors.New("txn: key not found")

// table holds committed rows.
type table struct {
	rows map[string]Row
}

// Store is an in-memory multi-table store with strict-2PL transactions and
// undo-log rollback. It models the Resource Manager's storage and the
// promise table of the prototype (§8).
//
// Alongside the transactional surface the store maintains a lock-free read
// path: every commit publishes an immutable versioned Snapshot of the full
// committed state (see snapshot.go), so read-only callers can observe a
// consistent view without acquiring a single lock.
type Store struct {
	lm     *LockManager
	nextTx atomic.Uint64

	mu     sync.RWMutex // guards the tables map and row maps; row access also lock-managed
	tables map[string]*table

	// snap is the latest published snapshot; snapMu serializes
	// publications. epochFn and commitHook are optional, set before
	// concurrent use (see SetEpochSource / SetCommitHook).
	snap       atomic.Pointer[Snapshot]
	snapMu     sync.Mutex
	epochFn    func() uint64
	commitHook func(snap *Snapshot, touched []TableKey)
}

// NewStore returns an empty Store.
func NewStore() *Store {
	s := &Store{
		lm:     NewLockManager(),
		tables: make(map[string]*table),
	}
	s.snap.Store(&Snapshot{byName: map[string]int{}})
	return s
}

// CreateTable registers a table. Creating an existing table is an error so
// schema typos surface early.
func (s *Store) CreateTable(name string) error {
	s.mu.Lock()
	if _, ok := s.tables[name]; ok {
		s.mu.Unlock()
		return fmt.Errorf("txn: table %q already exists", name)
	}
	s.tables[name] = &table{rows: make(map[string]Row)}
	s.mu.Unlock()
	s.publishTable(name)
	return nil
}

// undoRecord captures the pre-image of one modified key.
type undoRecord struct {
	table, key string
	prev       Row // nil when key did not exist
}

// Tx is a transaction. A Tx is used by a single goroutine.
type Tx struct {
	id     uint64
	store  *Store
	policy WaitPolicy
	// undo records one pre-image per write (not deduplicated per key, so
	// that savepoint rollback restores intermediate states correctly;
	// reverse replay makes the earliest pre-image win on full abort).
	undo []undoRecord
	done bool
}

// Begin starts a transaction with the given wait policy for its locks.
func (s *Store) Begin(policy WaitPolicy) *Tx {
	return &Tx{
		id:     s.nextTx.Add(1),
		store:  s,
		policy: policy,
	}
}

// ID returns the transaction identifier (used by baseline lock experiments).
func (t *Tx) ID() uint64 { return t.id }

func tableLock(tbl string) string    { return "tbl/" + tbl }
func rowLock(tbl, key string) string { return "row/" + tbl + "/" + key }

func (t *Tx) lookupTable(name string) (*table, error) {
	t.store.mu.RLock()
	tbl := t.store.tables[name]
	t.store.mu.RUnlock()
	if tbl == nil {
		return nil, fmt.Errorf("txn: no such table %q", name)
	}
	return tbl, nil
}

// Get returns a clone of the row at (tbl, key), taking IS on the table and
// S on the row.
func (t *Tx) Get(tbl, key string) (Row, error) {
	if t.done {
		return nil, ErrTxDone
	}
	tab, err := t.lookupTable(tbl)
	if err != nil {
		return nil, err
	}
	if err := t.store.lm.Acquire(t.id, tableLock(tbl), IS, t.policy); err != nil {
		return nil, err
	}
	if err := t.store.lm.Acquire(t.id, rowLock(tbl, key), S, t.policy); err != nil {
		return nil, err
	}
	t.store.mu.RLock()
	row, ok := tab.rows[key]
	t.store.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tbl, key)
	}
	return row.CloneRow(), nil
}

// Put stores a clone of row at (tbl, key), taking IX on the table and X on
// the row, recording an undo pre-image on first touch.
func (t *Tx) Put(tbl, key string, row Row) error {
	if t.done {
		return ErrTxDone
	}
	tab, err := t.lookupTable(tbl)
	if err != nil {
		return err
	}
	if err := t.store.lm.Acquire(t.id, tableLock(tbl), IX, t.policy); err != nil {
		return err
	}
	if err := t.store.lm.Acquire(t.id, rowLock(tbl, key), X, t.policy); err != nil {
		return err
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	t.recordUndoLocked(tab, tbl, key)
	tab.rows[key] = row.CloneRow()
	return nil
}

// Delete removes (tbl, key). Deleting a missing key returns ErrNotFound.
func (t *Tx) Delete(tbl, key string) error {
	if t.done {
		return ErrTxDone
	}
	tab, err := t.lookupTable(tbl)
	if err != nil {
		return err
	}
	if err := t.store.lm.Acquire(t.id, tableLock(tbl), IX, t.policy); err != nil {
		return err
	}
	if err := t.store.lm.Acquire(t.id, rowLock(tbl, key), X, t.policy); err != nil {
		return err
	}
	t.store.mu.Lock()
	defer t.store.mu.Unlock()
	if _, ok := tab.rows[key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tbl, key)
	}
	t.recordUndoLocked(tab, tbl, key)
	delete(tab.rows, key)
	return nil
}

// Scan visits every row of tbl in key order under a table-level S lock
// (preventing phantoms for the duration of the transaction, which the
// promise-checking step of §8 requires). fn receives clones; returning
// false stops the scan early.
func (t *Tx) Scan(tbl string, fn func(key string, row Row) bool) error {
	if t.done {
		return ErrTxDone
	}
	tab, err := t.lookupTable(tbl)
	if err != nil {
		return err
	}
	if err := t.store.lm.Acquire(t.id, tableLock(tbl), S, t.policy); err != nil {
		return err
	}
	t.store.mu.RLock()
	keys := make([]string, 0, len(tab.rows))
	for k := range tab.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snapshot := make([]Row, len(keys))
	for i, k := range keys {
		snapshot[i] = tab.rows[k].CloneRow()
	}
	t.store.mu.RUnlock()
	for i, k := range keys {
		if !fn(k, snapshot[i]) {
			break
		}
	}
	return nil
}

// LockShared acquires a table-level S lock on tbl without reading anything —
// the same lock Scan takes — and holds it until commit or abort (strict 2PL).
// A transaction holding table S locks is guaranteed that no concurrent
// transaction has uncommitted writes in those tables and that every prior
// committer has finished publishing (the commit hook runs before locks are
// released), so any out-of-band state maintained by the commit hook is
// exactly consistent with what reads under this transaction would observe.
// The property-matcher fast path (core/propmatch.go) is built on this.
func (t *Tx) LockShared(tbl string) error {
	if t.done {
		return ErrTxDone
	}
	if _, err := t.lookupTable(tbl); err != nil {
		return err
	}
	return t.store.lm.Acquire(t.id, tableLock(tbl), S, t.policy)
}

// Writes reports how many writes the transaction currently has in effect
// (undo-log length; savepoint rollback truncates it). Zero means the
// transaction has not modified any table state: everything it could read is
// exactly the committed state.
func (t *Tx) Writes() int { return len(t.undo) }

// recordUndoLocked appends the pre-image of (tbl, key). Caller holds s.mu.
func (t *Tx) recordUndoLocked(tab *table, tbl, key string) {
	var prev Row
	if old, ok := tab.rows[key]; ok {
		prev = old.CloneRow()
	}
	t.undo = append(t.undo, undoRecord{table: tbl, key: key, prev: prev})
}

// Commit makes the transaction's writes durable (in-memory), publishes a
// fresh snapshot covering them (before any lock is released, so the
// snapshot sequence is consistent with the 2PL serialization order), and
// releases all locks.
func (t *Tx) Commit() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	if touched := touchedKeys(t.undo); len(touched) > 0 {
		t.store.publishCommit(touched)
	}
	t.undo = nil
	t.store.lm.ReleaseAll(t.id)
	return nil
}

// Abort rolls back every write via the undo log (in reverse order) and
// releases all locks. The §8 prototype relies on this to undo application
// actions that violated unrelated promises.
func (t *Tx) Abort() error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	t.store.mu.Lock()
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		tab := t.store.tables[u.table]
		if tab == nil {
			continue
		}
		if u.prev == nil {
			delete(tab.rows, u.key)
		} else {
			tab.rows[u.key] = u.prev.CloneRow()
		}
	}
	t.store.mu.Unlock()
	t.undo = nil
	t.store.lm.ReleaseAll(t.id)
	return nil
}

// Done reports whether the transaction has committed or aborted.
func (t *Tx) Done() bool { return t.done }

// LockManager exposes the store's lock manager so the baseline package can
// take long-duration application locks in the same namespace.
func (s *Store) LockManager() *LockManager { return s.lm }
