package txn

// Savepoint marks the current position in the transaction's undo log.
// RollbackTo(mark) undoes every write made after the mark while keeping the
// transaction (and all its locks) alive.
//
// The promise manager uses savepoints to implement §8 faithfully: when an
// application action violates promises, "the promise manager will roll back
// the changes made by the Action and return a failure message" — the
// action's writes are undone, but promise grants made earlier while
// processing the same message survive.
type Savepoint int

// Savepoint returns a mark for the current undo position.
func (t *Tx) Savepoint() Savepoint { return Savepoint(len(t.undo)) }

// RollbackTo undoes all writes made after mark, in reverse order. Locks
// are retained (strict two-phase locking releases only at commit/abort).
// Rolling back to a stale mark (beyond the current log) is a no-op.
func (t *Tx) RollbackTo(mark Savepoint) error {
	if t.done {
		return ErrTxDone
	}
	m := int(mark)
	if m < 0 {
		m = 0
	}
	if m >= len(t.undo) {
		return nil
	}
	t.store.mu.Lock()
	for i := len(t.undo) - 1; i >= m; i-- {
		u := t.undo[i]
		tab := t.store.tables[u.table]
		if tab == nil {
			continue
		}
		if u.prev == nil {
			delete(tab.rows, u.key)
		} else {
			tab.rows[u.key] = u.prev.CloneRow()
		}
	}
	t.store.mu.Unlock()
	t.undo = t.undo[:m]
	return nil
}
