package txn

import (
	"fmt"
	"sort"
)

// This file is the lock-free read half of the store. Every committed
// transaction publishes a fresh immutable Snapshot of the full table state
// via an atomic pointer: copy-on-write of only the buckets its writes
// touched, so publication costs O(touched), not O(table). Readers load the
// pointer and walk plain maps — no lock-manager traffic, no store mutex,
// no blocking behind writers. This is the RCU/epoch pattern: writers never
// wait for readers, readers never wait for writers, and a reader's view is
// always some committed prefix of history (never a torn mid-transaction
// state).
//
// Snapshots carry two counters. Version increases by one per publication
// and identifies the snapshot within this store (caches key off it). Epoch
// is stamped from an external source when one is configured — the promise
// manager wires it to the event-bus sequence number, so a snapshot with
// Epoch E is guaranteed to reflect every commit whose lifecycle events
// were published with Seq <= E, and snapshot readers and Watch streams
// describe the same history.

// Reader is the read-only surface shared by *Tx and *Snapshot: both return
// clones, so code written against Reader runs identically inside a
// transaction (2PL-isolated) and against a lock-free snapshot.
type Reader interface {
	// Get returns a clone of the row at (tbl, key), or ErrNotFound.
	Get(tbl, key string) (Row, error)
	// Scan visits a clone of every row of tbl in key order; returning
	// false stops early.
	Scan(tbl string, fn func(key string, row Row) bool) error
}

var (
	_ Reader = (*Tx)(nil)
	_ Reader = (*Snapshot)(nil)
)

// TableKey names one committed row change, for commit hooks.
type TableKey struct {
	Table, Key string
}

// snapshotBuckets fixes the copy-on-write granularity: each table's rows
// spread over this many immutable maps, and a commit copies only the
// buckets holding its touched keys (~1/64th of the table each). It must
// stay <= 64 so a publication can track copied buckets in one bitmask.
const snapshotBuckets = 64

// snapTable is one table's slice of a snapshot.
type snapTable struct {
	buckets [snapshotBuckets]map[string]Row
}

// bucketOf is FNV-1a inlined: it sits on the per-Get hot path of every
// lock-free read, where the hash.Hash32 interface would cost a heap
// allocation per lookup.
func bucketOf(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % snapshotBuckets)
}

// Snapshot is an immutable view of the store's committed state. It is safe
// for concurrent use by any number of readers and never changes once
// published; Get and Scan return clones, exactly like their Tx
// counterparts, so handing rows onward can never alias the snapshot.
type Snapshot struct {
	version uint64
	epoch   uint64
	// byName maps table name -> index in tables. The map itself is
	// immutable and shared across snapshots (replaced wholesale when a
	// table is created), so a commit's publication copies one small
	// pointer slice, never a map.
	byName map[string]int
	tables []*snapTable
}

// Version identifies this snapshot within its store: strictly increasing
// by one per committed publication.
func (s *Snapshot) Version() uint64 { return s.version }

// Epoch is the externally supplied commit epoch (see Store.SetEpochSource);
// equal to Version when no source is configured. The promise manager wires
// it to the event-bus sequence number: a snapshot with Epoch E reflects
// every commit whose events carry Seq <= E.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

func (s *Snapshot) table(tbl string) (*snapTable, error) {
	idx, ok := s.byName[tbl]
	if !ok {
		return nil, fmt.Errorf("txn: no such table %q", tbl)
	}
	return s.tables[idx], nil
}

// Get returns a clone of the row at (tbl, key) without acquiring any lock.
func (s *Snapshot) Get(tbl, key string) (Row, error) {
	t, err := s.table(tbl)
	if err != nil {
		return nil, err
	}
	row, ok := t.buckets[bucketOf(key)][key]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tbl, key)
	}
	return row.CloneRow(), nil
}

// Scan visits a clone of every row of tbl in key order without acquiring
// any lock; returning false stops early.
func (s *Snapshot) Scan(tbl string, fn func(key string, row Row) bool) error {
	t, err := s.table(tbl)
	if err != nil {
		return err
	}
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	keys := make([]string, 0, n)
	for _, b := range t.buckets {
		for k := range b {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !fn(k, t.buckets[bucketOf(k)][k].CloneRow()) {
			break
		}
	}
	return nil
}

// Len reports the number of rows in tbl (0 for unknown tables).
func (s *Snapshot) Len(tbl string) int {
	t, err := s.table(tbl)
	if err != nil {
		return 0
	}
	n := 0
	for _, b := range t.buckets {
		n += len(b)
	}
	return n
}

// Snapshot returns the store's latest committed snapshot. The returned
// value is immutable; a caller holding it observes one consistent committed
// state for as long as it likes while writers move on.
func (s *Store) Snapshot() *Snapshot {
	return s.snap.Load()
}

// SetEpochSource installs the function that stamps each published
// snapshot's Epoch (called once per commit, serialized). Configure it
// before the store sees concurrent use.
func (s *Store) SetEpochSource(fn func() uint64) { s.epochFn = fn }

// SetCommitHook installs a function invoked after every snapshot
// publication with the fresh snapshot and the commit's touched keys.
// Invocations are serialized in publication order, so the hook can
// maintain derived indexes incrementally without its own locking.
// Configure it before the store sees concurrent use.
func (s *Store) SetCommitHook(fn func(snap *Snapshot, touched []TableKey)) { s.commitHook = fn }

// publishTable publishes a snapshot with tbl added, for CreateTable.
func (s *Store) publishTable(tbl string) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	prev := s.snap.Load()
	byName := make(map[string]int, len(prev.byName)+1)
	for n, i := range prev.byName {
		byName[n] = i
	}
	byName[tbl] = len(prev.tables)
	next := &Snapshot{
		version: prev.version + 1,
		epoch:   prev.epoch,
		byName:  byName,
		tables:  append(append(make([]*snapTable, 0, len(prev.tables)+1), prev.tables...), &snapTable{}),
	}
	if s.epochFn != nil {
		next.epoch = s.epochFn()
	} else {
		next.epoch = next.version
	}
	s.snap.Store(next)
}

// tableWork is one table's copy-on-write state inside a publication.
type tableWork struct {
	name   string
	live   *table
	st     *snapTable
	copied uint64 // bitmask of buckets already copy-on-written
}

// publishCommit publishes a snapshot reflecting the calling transaction's
// committed writes. The caller still holds its X row locks, so the touched
// rows cannot change underneath the copy; snapMu serializes concurrent
// publications (2PL guarantees their touched sets are disjoint, so each
// only needs to fold in its own keys).
func (s *Store) publishCommit(touched []TableKey) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	prev := s.snap.Load()
	next := &Snapshot{
		version: prev.version + 1,
		byName:  prev.byName,
		tables:  append(make([]*snapTable, 0, len(prev.tables)), prev.tables...),
	}
	// A commit rarely touches more than a handful of tables; a linear
	// scan over this small stack array beats any map.
	var works [8]tableWork
	nWorks := 0
	s.mu.RLock()
	for _, tk := range touched {
		var w *tableWork
		for i := 0; i < nWorks; i++ {
			if works[i].name == tk.Table {
				w = &works[i]
				break
			}
		}
		if w == nil {
			idx, ok := prev.byName[tk.Table]
			if !ok {
				continue
			}
			live := s.tables[tk.Table]
			if live == nil {
				continue
			}
			// First touch of this table (or a re-touch past the works
			// array): shallow-copy the building snapshot's snapTable so
			// published bucket arrays stay immutable and earlier writes of
			// this same publication are preserved.
			fresh := &snapTable{buckets: next.tables[idx].buckets}
			next.tables[idx] = fresh
			if nWorks < len(works) {
				works[nWorks] = tableWork{name: tk.Table, live: live, st: fresh}
				w = &works[nWorks]
				nWorks++
			} else {
				scratch := tableWork{name: tk.Table, live: live, st: fresh}
				w = &scratch
			}
		}
		b := bucketOf(tk.Key)
		if w.copied&(1<<b) == 0 {
			old := w.st.buckets[b]
			nb := make(map[string]Row, len(old)+1)
			for k, v := range old {
				nb[k] = v
			}
			w.st.buckets[b] = nb
			w.copied |= 1 << b
		}
		if row, ok := w.live.rows[tk.Key]; ok {
			// The committed Row object is shared with the live table; both
			// sides treat committed rows as immutable (Put replaces, never
			// mutates), so sharing is safe and Get clones on the way out.
			w.st.buckets[b][tk.Key] = row
		} else {
			delete(w.st.buckets[b], tk.Key)
		}
	}
	s.mu.RUnlock()
	if s.epochFn != nil {
		next.epoch = s.epochFn()
	} else {
		next.epoch = next.version
	}
	s.snap.Store(next)
	if s.commitHook != nil {
		s.commitHook(next, touched)
	}
}

// touchedKeys dedupes the undo log into the set of (table, key) pairs this
// transaction wrote. Small logs (the overwhelmingly common case) dedupe by
// linear scan with zero allocation beyond the result.
func touchedKeys(undo []undoRecord) []TableKey {
	switch {
	case len(undo) == 0:
		return nil
	case len(undo) <= 32:
		out := make([]TableKey, 0, len(undo))
		for _, u := range undo {
			tk := TableKey{Table: u.table, Key: u.key}
			dup := false
			for _, e := range out {
				if e == tk {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, tk)
			}
		}
		return out
	default:
		seen := make(map[TableKey]bool, len(undo))
		out := make([]TableKey, 0, len(undo))
		for _, u := range undo {
			tk := TableKey{Table: u.table, Key: u.key}
			if !seen[tk] {
				seen[tk] = true
				out = append(out, tk)
			}
		}
		return out
	}
}
