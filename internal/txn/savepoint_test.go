package txn

import (
	"errors"
	"testing"
)

func TestSavepointRollbackKeepsEarlierWrites(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	_ = tx.Put("t", "kept", &intRow{n: 1})
	mark := tx.Savepoint()
	_ = tx.Put("t", "dropped", &intRow{n: 2})
	_ = tx.Put("t", "kept", &intRow{n: 99})
	if err := tx.RollbackTo(mark); err != nil {
		t.Fatal(err)
	}
	row, err := tx.Get("t", "kept")
	if err != nil {
		t.Fatal(err)
	}
	if row.(*intRow).n != 1 {
		t.Fatalf("kept = %d, want 1 (pre-savepoint value)", row.(*intRow).n)
	}
	if _, err := tx.Get("t", "dropped"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("dropped should not exist: %v", err)
	}
	_ = tx.Commit()
	check := s.Begin(Block)
	defer check.Commit()
	row, _ = check.Get("t", "kept")
	if row.(*intRow).n != 1 {
		t.Fatalf("committed kept = %d", row.(*intRow).n)
	}
}

func TestSavepointThenAbortStillRestoresAll(t *testing.T) {
	s := newTestStore(t, "t")
	seed := s.Begin(Block)
	_ = seed.Put("t", "k", &intRow{n: 10})
	_ = seed.Commit()

	tx := s.Begin(Block)
	_ = tx.Put("t", "k", &intRow{n: 20})
	mark := tx.Savepoint()
	_ = tx.Put("t", "k", &intRow{n: 30})
	_ = tx.RollbackTo(mark)
	// Write again after rollback: the undo machinery must re-record.
	_ = tx.Put("t", "k", &intRow{n: 40})
	_ = tx.Abort()

	check := s.Begin(Block)
	defer check.Commit()
	row, _ := check.Get("t", "k")
	if row.(*intRow).n != 10 {
		t.Fatalf("after abort = %d, want 10", row.(*intRow).n)
	}
}

func TestSavepointRewriteAfterRollback(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	mark := tx.Savepoint()
	_ = tx.Put("t", "k", &intRow{n: 1})
	_ = tx.RollbackTo(mark)
	_ = tx.Put("t", "k", &intRow{n: 2})
	_ = tx.RollbackTo(mark)
	if _, err := tx.Get("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("k should be gone after second rollback: %v", err)
	}
	_ = tx.Commit()
}

func TestSavepointLocksRetained(t *testing.T) {
	s := newTestStore(t, "t")
	seed := s.Begin(Block)
	_ = seed.Put("t", "k", &intRow{n: 1})
	_ = seed.Commit()

	tx := s.Begin(Block)
	mark := tx.Savepoint()
	_ = tx.Put("t", "k", &intRow{n: 2})
	_ = tx.RollbackTo(mark)
	// The X lock on k must still be held: another tx cannot read it.
	other := s.Begin(NoWait)
	if _, err := other.Get("t", "k"); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("lock released by savepoint rollback: %v", err)
	}
	_ = other.Abort()
	_ = tx.Commit()
}

func TestSavepointStaleAndDoneTx(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	_ = tx.Put("t", "k", &intRow{n: 1})
	mark := tx.Savepoint()
	if err := tx.RollbackTo(mark + 100); err != nil {
		t.Fatalf("stale mark should no-op: %v", err)
	}
	if err := tx.RollbackTo(-1); err != nil {
		t.Fatalf("negative mark clamps: %v", err)
	}
	if _, err := tx.Get("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("negative mark should have undone everything: %v", err)
	}
	_ = tx.Commit()
	if err := tx.RollbackTo(mark); !errors.Is(err, ErrTxDone) {
		t.Fatalf("rollback after commit: %v", err)
	}
}

func TestSavepointDeleteRestored(t *testing.T) {
	s := newTestStore(t, "t")
	seed := s.Begin(Block)
	_ = seed.Put("t", "k", &intRow{n: 7})
	_ = seed.Commit()
	tx := s.Begin(Block)
	mark := tx.Savepoint()
	_ = tx.Delete("t", "k")
	_ = tx.RollbackTo(mark)
	row, err := tx.Get("t", "k")
	if err != nil {
		t.Fatalf("deleted key not restored: %v", err)
	}
	if row.(*intRow).n != 7 {
		t.Fatalf("restored = %d", row.(*intRow).n)
	}
	_ = tx.Commit()
}
