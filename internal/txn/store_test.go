package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// intRow is a simple Row for tests.
type intRow struct{ n int64 }

func (r *intRow) CloneRow() Row { c := *r; return &c }

func newTestStore(t *testing.T, tables ...string) *Store {
	t.Helper()
	s := NewStore()
	for _, tbl := range tables {
		if err := s.CreateTable(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestCreateTableDuplicate(t *testing.T) {
	s := newTestStore(t, "a")
	if err := s.CreateTable("a"); err == nil {
		t.Fatal("duplicate CreateTable should fail")
	}
}

func TestPutGetCommit(t *testing.T) {
	s := newTestStore(t, "acct")
	tx := s.Begin(Block)
	if err := tx.Put("acct", "alice", &intRow{n: 100}); err != nil {
		t.Fatal(err)
	}
	row, err := tx.Get("acct", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if row.(*intRow).n != 100 {
		t.Fatalf("read own write = %d", row.(*intRow).n)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := s.Begin(Block)
	defer tx2.Commit()
	row, err = tx2.Get("acct", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if row.(*intRow).n != 100 {
		t.Fatalf("committed value = %d", row.(*intRow).n)
	}
}

func TestGetMissing(t *testing.T) {
	s := newTestStore(t, "acct")
	tx := s.Begin(Block)
	defer tx.Commit()
	if _, err := tx.Get("acct", "nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestUnknownTable(t *testing.T) {
	s := newTestStore(t)
	tx := s.Begin(Block)
	defer tx.Commit()
	if _, err := tx.Get("ghost", "k"); err == nil {
		t.Fatal("want error for unknown table")
	}
	if err := tx.Put("ghost", "k", &intRow{}); err == nil {
		t.Fatal("want error for unknown table")
	}
	if err := tx.Delete("ghost", "k"); err == nil {
		t.Fatal("want error for unknown table")
	}
	if err := tx.Scan("ghost", func(string, Row) bool { return true }); err == nil {
		t.Fatal("want error for unknown table")
	}
}

func TestAbortRestoresPreImages(t *testing.T) {
	s := newTestStore(t, "acct")
	setup := s.Begin(Block)
	if err := setup.Put("acct", "alice", &intRow{n: 100}); err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := s.Begin(Block)
	if err := tx.Put("acct", "alice", &intRow{n: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("acct", "alice", &intRow{n: 2}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("acct", "bob", &intRow{n: 50}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("acct", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	check := s.Begin(Block)
	defer check.Commit()
	row, err := check.Get("acct", "alice")
	if err != nil {
		t.Fatalf("alice after abort: %v", err)
	}
	if row.(*intRow).n != 100 {
		t.Fatalf("alice = %d after abort, want 100", row.(*intRow).n)
	}
	if _, err := check.Get("acct", "bob"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("bob should not exist after abort, got %v", err)
	}
}

func TestDeleteCommit(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	_ = tx.Put("t", "k", &intRow{n: 1})
	_ = tx.Commit()
	tx2 := s.Begin(Block)
	if err := tx2.Delete("t", "k"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Delete("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	_ = tx2.Commit()
	tx3 := s.Begin(Block)
	defer tx3.Commit()
	if _, err := tx3.Get("t", "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key visible: %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	row := &intRow{n: 1}
	_ = tx.Put("t", "k", row)
	row.n = 999 // mutate caller's copy after Put
	got, _ := tx.Get("t", "k")
	if got.(*intRow).n != 1 {
		t.Fatalf("store aliased caller row: %d", got.(*intRow).n)
	}
	got.(*intRow).n = 777 // mutate returned clone
	again, _ := tx.Get("t", "k")
	if again.(*intRow).n != 1 {
		t.Fatalf("store aliased returned row: %d", again.(*intRow).n)
	}
	_ = tx.Commit()
}

func TestTxDoneErrors(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	_ = tx.Commit()
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("abort after commit: %v", err)
	}
	if _, err := tx.Get("t", "k"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("get after commit: %v", err)
	}
	if err := tx.Put("t", "k", &intRow{}); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put after commit: %v", err)
	}
	if err := tx.Delete("t", "k"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("delete after commit: %v", err)
	}
	if err := tx.Scan("t", func(string, Row) bool { return true }); !errors.Is(err, ErrTxDone) {
		t.Fatalf("scan after commit: %v", err)
	}
	if !tx.Done() {
		t.Fatal("Done() = false")
	}
}

func TestScanOrderAndEarlyStop(t *testing.T) {
	s := newTestStore(t, "t")
	tx := s.Begin(Block)
	for _, k := range []string{"c", "a", "b"} {
		_ = tx.Put("t", k, &intRow{n: int64(k[0])})
	}
	_ = tx.Commit()

	tx2 := s.Begin(Block)
	defer tx2.Commit()
	var keys []string
	_ = tx2.Scan("t", func(k string, _ Row) bool {
		keys = append(keys, k)
		return true
	})
	if fmt.Sprint(keys) != "[a b c]" {
		t.Fatalf("scan order = %v", keys)
	}
	var first []string
	_ = tx2.Scan("t", func(k string, _ Row) bool {
		first = append(first, k)
		return false
	})
	if len(first) != 1 || first[0] != "a" {
		t.Fatalf("early stop = %v", first)
	}
}

func TestScanBlocksConcurrentWriter(t *testing.T) {
	s := newTestStore(t, "t")
	seed := s.Begin(Block)
	_ = seed.Put("t", "k", &intRow{n: 1})
	_ = seed.Commit()

	reader := s.Begin(NoWait)
	if err := reader.Scan("t", func(string, Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	writer := s.Begin(NoWait)
	err := writer.Put("t", "k2", &intRow{n: 2})
	if !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("phantom insert during scan-holding tx: %v", err)
	}
	_ = writer.Abort()
	_ = reader.Commit()
	// After the scanner commits, the writer succeeds.
	w2 := s.Begin(NoWait)
	if err := w2.Put("t", "k2", &intRow{n: 2}); err != nil {
		t.Fatal(err)
	}
	_ = w2.Commit()
}

func TestConcurrentDisjointWriters(t *testing.T) {
	s := newTestStore(t, "t")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tx := s.Begin(Block)
				key := fmt.Sprintf("k%d", i)
				if err := tx.Put("t", key, &intRow{n: int64(j)}); err != nil {
					errs[i] = err
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
}

func TestConcurrentCountersSerialize(t *testing.T) {
	// Read-modify-write on a single row from many goroutines: the upgrade
	// path (S then X) may deadlock two readers; deadlock victims retry.
	// Final value must equal the number of successful increments.
	s := newTestStore(t, "t")
	seed := s.Begin(Block)
	_ = seed.Put("t", "ctr", &intRow{n: 0})
	_ = seed.Commit()

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				for { // retry loop on deadlock/conflict
					tx := s.Begin(Block)
					row, err := tx.Get("t", "ctr")
					if err == nil {
						r := row.(*intRow)
						r.n++
						err = tx.Put("t", "ctr", r)
					}
					if err == nil {
						if err = tx.Commit(); err == nil {
							break
						}
					} else {
						_ = tx.Abort()
					}
					if !errors.Is(err, ErrDeadlock) && !errors.Is(err, ErrWouldBlock) && err != nil {
						t.Errorf("unexpected error: %v", err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	check := s.Begin(Block)
	defer check.Commit()
	row, err := check.Get("t", "ctr")
	if err != nil {
		t.Fatal(err)
	}
	if got := row.(*intRow).n; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d (lost updates!)", got, workers*perWorker)
	}
}
