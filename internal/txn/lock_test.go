package txn

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestModeCompatibilityMatrix(t *testing.T) {
	// Rows: holder, columns: requester. Classic hierarchical matrix.
	want := map[[2]Mode]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, SIX}: true, {IS, X}: false,
		{IX, IS}: true, {IX, IX}: true, {IX, S}: false, {IX, SIX}: false, {IX, X}: false,
		{S, IS}: true, {S, IX}: false, {S, S}: true, {S, SIX}: false, {S, X}: false,
		{SIX, IS}: true, {SIX, IX}: false, {SIX, S}: false, {SIX, SIX}: false, {SIX, X}: false,
		{X, IS}: false, {X, IX}: false, {X, S}: false, {X, SIX}: false, {X, X}: false,
	}
	for pair, exp := range want {
		if got := compatible(pair[0], pair[1]); got != exp {
			t.Errorf("compatible(%v, %v) = %v, want %v", pair[0], pair[1], got, exp)
		}
	}
}

func TestModeSup(t *testing.T) {
	cases := []struct {
		a, b, want Mode
	}{
		{None, S, S},
		{IS, IX, IX},
		{IS, S, S},
		{S, IX, SIX},
		{IX, S, SIX},
		{S, X, X},
		{IX, X, X},
		{SIX, X, X},
		{SIX, S, SIX},
		{SIX, IX, SIX},
		{X, IS, X},
		{S, S, S},
	}
	for _, c := range cases {
		if got := sup(c.a, c.b); got != c.want {
			t.Errorf("sup(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAcquireSharedConcurrently(t *testing.T) {
	lm := NewLockManager()
	for tx := uint64(1); tx <= 5; tx++ {
		if err := lm.Acquire(tx, "r", S, NoWait); err != nil {
			t.Fatalf("tx %d: %v", tx, err)
		}
	}
}

func TestAcquireExclusiveConflicts(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", X, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "r", S, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	lm.ReleaseAll(1)
	if err := lm.Acquire(2, "r", S, NoWait); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestAcquireReentrantAndUpgrade(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", S, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "r", S, NoWait); err != nil {
		t.Fatalf("re-acquire same mode: %v", err)
	}
	if err := lm.Acquire(1, "r", X, NoWait); err != nil {
		t.Fatalf("upgrade S->X with no other holders: %v", err)
	}
	if got := lm.HeldModes(1)["r"]; got != X {
		t.Fatalf("held mode = %v, want X", got)
	}
}

func TestUpgradeBlockedByOtherReader(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", S, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "r", S, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "r", X, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("upgrade with concurrent reader: want ErrWouldBlock, got %v", err)
	}
}

func TestBlockingHandoff(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", X, Block); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lm.Acquire(2, "r", X, Block) }()
	select {
	case err := <-got:
		t.Fatalf("acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("handoff: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestDeadlockDetection(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "a", X, Block); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "b", X, Block); err != nil {
		t.Fatal(err)
	}
	step := make(chan error, 1)
	go func() { step <- lm.Acquire(1, "b", X, Block) }() // 1 waits on 2
	time.Sleep(20 * time.Millisecond)
	// 2 requests a held by 1: closes the cycle; 2 must get ErrDeadlock.
	err := lm.Acquire(2, "a", X, Block)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	// Victim aborts: releases its locks; tx 1 proceeds.
	lm.ReleaseAll(2)
	select {
	case err := <-step:
		if err != nil {
			t.Fatalf("tx1 after victim abort: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("tx1 never unblocked")
	}
}

func TestDeadlockThreeWay(t *testing.T) {
	lm := NewLockManager()
	for tx := uint64(1); tx <= 3; tx++ {
		if err := lm.Acquire(tx, string(rune('a'+tx-1)), X, Block); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 2)
	go func() { done <- lm.Acquire(1, "b", X, Block) }()
	go func() { done <- lm.Acquire(2, "c", X, Block) }()
	time.Sleep(20 * time.Millisecond)
	err := lm.Acquire(3, "a", X, Block)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	lm.ReleaseAll(3)
	if err := <-done; err != nil {
		t.Fatalf("first waiter: %v", err)
	}
}

func TestFIFOPreventsWriterStarvation(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", S, Block); err != nil {
		t.Fatal(err)
	}
	writer := make(chan error, 1)
	go func() { writer <- lm.Acquire(2, "r", X, Block) }()
	time.Sleep(20 * time.Millisecond)
	// A new reader must queue behind the writer, not sneak in.
	if err := lm.Acquire(3, "r", S, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("reader bypassed queued writer: %v", err)
	}
	lm.ReleaseAll(1)
	if err := <-writer; err != nil {
		t.Fatalf("writer: %v", err)
	}
}

func TestReleaseAllWakesMultipleReaders(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "r", X, Block); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = lm.Acquire(uint64(10+i), "r", S, Block)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	lm.ReleaseAll(1)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
}

func TestNoWaitNeverDeadlocks(t *testing.T) {
	// §9 claim: "unfulfillable promise requests are rejected immediately
	// rather than blocking, we do not have to worry about deadlock".
	lm := NewLockManager()
	if err := lm.Acquire(1, "a", X, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "b", X, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "b", X, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	if err := lm.Acquire(2, "a", X, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("want ErrWouldBlock, got %v", err)
	}
	// Both can release and retry; no one is stuck.
	lm.ReleaseAll(1)
	if err := lm.Acquire(2, "a", X, NoWait); err != nil {
		t.Fatal(err)
	}
}

func TestIntentionLocksAllowDisjointRowWriters(t *testing.T) {
	lm := NewLockManager()
	if err := lm.Acquire(1, "tbl/rooms", IX, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(1, "row/rooms/101", X, NoWait); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "tbl/rooms", IX, NoWait); err != nil {
		t.Fatalf("second IX on table: %v", err)
	}
	if err := lm.Acquire(2, "row/rooms/102", X, NoWait); err != nil {
		t.Fatalf("disjoint row write: %v", err)
	}
	// But a table scanner (S) must be blocked by the IX holders.
	if err := lm.Acquire(3, "tbl/rooms", S, NoWait); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("scan during writes: want ErrWouldBlock, got %v", err)
	}
}
