package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checkpoints. A checkpoint is one frame-wrapped payload (same length+CRC
// framing as log records) holding a full serialized engine state, named by
// the log segment it covers up to (the Rotate value taken before the state
// was captured — strictly increasing across process generations, unlike
// store versions or epochs, which restart on a fresh store) and the
// snapshot version inside it:
//
//	checkpoint-<segment>-<version>.ckpt
//
// both zero-padded so lexical order equals recency order. Writes go through
// a temp file + fsync + rename + directory fsync, so a crash mid-checkpoint
// leaves either the old set or the old set plus a complete new file — never
// a half-written checkpoint under the real name. The newest two are kept:
// if the newest turns out corrupt on load (torn rename target on exotic
// filesystems, bit rot), recovery falls back to its predecessor plus a
// longer log tail.

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
	// ckptKeep is how many recent checkpoints survive pruning.
	ckptKeep = 2
)

func ckptName(seg, ver uint64) string {
	return fmt.Sprintf("%s%020d-%020d%s", ckptPrefix, seg, ver, ckptSuffix)
}

func parseCkptName(name string) (seg, ver uint64, ok bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, 0, false
	}
	body := name[len(ckptPrefix) : len(name)-len(ckptSuffix)]
	if _, err := fmt.Sscanf(body, "%d-%d", &seg, &ver); err != nil {
		return 0, 0, false
	}
	return seg, ver, true
}

// WriteCheckpoint durably writes payload as the checkpoint covering log
// segments below seg at snapshot version ver, and prunes all but the newest
// ckptKeep checkpoints.
func WriteCheckpoint(dir string, seg, ver uint64, payload []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)

	tmp, err := os.CreateTemp(dir, ckptPrefix+"tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, filepath.Join(dir, ckptName(seg, ver))); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	return pruneCheckpoints(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

type ckptFile struct {
	seg, ver uint64
	name     string
}

func listCheckpoints(dir string) ([]ckptFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []ckptFile
	for _, e := range entries {
		if seg, ver, ok := parseCkptName(e.Name()); ok {
			out = append(out, ckptFile{seg: seg, ver: ver, name: e.Name()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].seg != out[j].seg {
			return out[i].seg < out[j].seg
		}
		return out[i].ver < out[j].ver
	})
	return out, nil
}

func pruneCheckpoints(dir string) error {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return err
	}
	for len(cks) > ckptKeep {
		if err := os.Remove(filepath.Join(dir, cks[0].name)); err != nil {
			return err
		}
		cks = cks[1:]
	}
	return nil
}

// LatestCheckpoint loads the most recent intact checkpoint in dir. A
// corrupt newest checkpoint is skipped in favour of its predecessor. With
// no (intact) checkpoint present it returns (0, 0, nil, nil): recovery then
// replays the log from genesis.
func LatestCheckpoint(dir string) (seg, ver uint64, payload []byte, err error) {
	cks, err := listCheckpoints(dir)
	if err != nil {
		return 0, 0, nil, err
	}
	for i := len(cks) - 1; i >= 0; i-- {
		payload, err := readCheckpoint(filepath.Join(dir, cks[i].name))
		if err != nil {
			continue // corrupt or torn: fall back to the previous one
		}
		return cks[i].seg, cks[i].ver, payload, nil
	}
	return 0, 0, nil, nil
}

func readCheckpoint(path string) ([]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(buf) < frameHeader {
		return nil, fmt.Errorf("wal: checkpoint %s truncated", filepath.Base(path))
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if uint64(n) != uint64(len(buf)-frameHeader) {
		return nil, fmt.Errorf("wal: checkpoint %s length mismatch", filepath.Base(path))
	}
	payload := buf[frameHeader:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return nil, fmt.Errorf("wal: checkpoint %s CRC mismatch", filepath.Base(path))
	}
	return payload, nil
}
