// Package wal is the durability layer under the promise engine: an
// append-only, CRC-framed, segmented log plus an atomically written
// checkpoint store (checkpoint.go). The promise manager appends one record
// per committed transaction and per published event batch; on restart it
// loads the latest checkpoint and replays the retained log tail through its
// normal commit path, so a recovered engine is equivalent to one that never
// died (see internal/core's OpenDurable).
//
// Framing. Every record is length-prefixed and guarded by a CRC-32C of its
// payload, so a torn write at the tail of the last segment — the signature
// of a crash mid-append — is detected and discarded rather than replayed as
// garbage. Corruption anywhere before the final record of the final segment
// is reported as an error instead: silently dropping an interior record
// would replay a history with a hole in it.
//
// Sync policies. Appends always reach the kernel before Append returns (one
// write syscall per record, no user-space buffering); the policy decides
// when they reach the disk. SyncAlways fsyncs on every commit point with
// group commit — concurrent committers share one fsync. SyncInterval fsyncs
// on a background cadence; SyncNone leaves flushing to the OS entirely.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/failpoint"
)

// SyncPolicy selects when appended records are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs at every commit point before the caller proceeds:
	// a response implies the commit is on disk. Group commit batches
	// concurrent committers into one fsync.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background cadence (Options.SyncEvery). A
	// crash can lose up to one interval of acknowledged work.
	SyncInterval
	// SyncNone never fsyncs; the OS flushes when it pleases. A crash can
	// lose everything since the last OS writeback.
	SyncNone
)

// String names the policy (and is the -sync flag vocabulary).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the String form back into a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or none)", s)
}

// DefaultSyncEvery is the background fsync cadence under SyncInterval when
// Options.SyncEvery is zero.
const DefaultSyncEvery = 50 * time.Millisecond

// frame layout: 4-byte little-endian payload length, 4-byte CRC-32C
// (Castagnoli) of the payload, then the payload.
const frameHeader = 8

// maxRecord bounds one record, so a corrupt length prefix cannot drive a
// giant allocation during replay.
const maxRecord = 1 << 28

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log closed")

// segPrefix and segSuffix name segment files: "wal-<n>.log", zero-padded so
// lexical order equals numeric order.
const (
	segPrefix = "wal-"
	segSuffix = ".log"
)

func segName(n uint64) string { return fmt.Sprintf("%s%012d%s", segPrefix, n, segSuffix) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var n uint64
	_, err := fmt.Sscanf(name[len(segPrefix):len(name)-len(segSuffix)], "%d", &n)
	return n, err == nil
}

// Options configures a Log.
type Options struct {
	// Policy is the sync policy; the zero value is SyncAlways.
	Policy SyncPolicy
	// SyncEvery is the background fsync cadence under SyncInterval; zero
	// means DefaultSyncEvery. Ignored by the other policies.
	SyncEvery time.Duration
}

// Log is an append-only segmented record log. It is safe for concurrent
// use. Opening a Log always starts a fresh segment (numbered after every
// existing one), so recovery replays and prior torn tails are never
// appended into.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex // guards f, seg, appended, closed
	f        *os.File
	seg      uint64
	appended uint64 // monotone count of appended frames, the group-commit token
	closed   bool

	syncMu sync.Mutex // serializes fsyncs; guards synced
	synced uint64     // appended-token already on disk

	stop chan struct{} // closes the interval syncer
	wg   sync.WaitGroup
}

// OpenLog opens (creating if needed) the log directory and starts a fresh
// segment after the highest existing one. Existing segments are left
// untouched for Replay until RemoveSegmentsBefore prunes them.
func OpenLog(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	if opts.Policy == SyncInterval && opts.SyncEvery <= 0 {
		opts.SyncEvery = DefaultSyncEvery
	}
	l := &Log{dir: dir, opts: opts}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.wg.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []uint64
	for _, e := range entries {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

func (l *Log) openSegmentLocked(n uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(n)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f, l.seg = f, n
	return nil
}

// Segment returns the current segment number.
func (l *Log) Segment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Append writes one framed record. The record reaches the kernel before
// Append returns; Sync (or the policy's background cadence) moves it to
// stable storage.
func (l *Log) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecord)
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := failpoint.Eval("wal/append"); err != nil {
		return err
	}
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.appended++
	return nil
}

// Sync forces every record appended so far to stable storage, honouring the
// policy: SyncAlways fsyncs (group commit — a caller whose records another
// caller's fsync already covered returns without a syscall); SyncInterval
// and SyncNone return immediately, leaving flushing to the cadence or the
// OS.
func (l *Log) Sync() error {
	if l.opts.Policy != SyncAlways {
		return nil
	}
	return l.fsync()
}

// fsync is the policy-independent flush used by Sync, the interval loop,
// rotation and Close.
func (l *Log) fsync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	target := l.appended
	f := l.f
	l.mu.Unlock()

	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= target {
		return nil // a concurrent committer's fsync already covered us
	}
	if err := failpoint.Eval("wal/sync"); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if target > l.synced {
		l.synced = target
	}
	return nil
}

func (l *Log) syncLoop() {
	defer l.wg.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			_ = l.fsync()
		}
	}
}

// Rotate flushes and closes the current segment and starts the next one,
// returning the new segment's number. Records appended concurrently land in
// one segment or the other, never torn across both. The checkpointer calls
// Rotate before capturing state, so every record in segments before the
// returned number is covered by the checkpoint it then writes.
func (l *Log) Rotate() (uint64, error) {
	// Take syncMu across the swap so a concurrent fsync cannot target the
	// closed file descriptor.
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return 0, err
	}
	l.synced = l.appended
	if err := l.f.Close(); err != nil {
		return 0, err
	}
	if err := l.openSegmentLocked(l.seg + 1); err != nil {
		return 0, err
	}
	return l.seg, nil
}

// RemoveSegmentsBefore deletes every segment numbered below keep — called
// after a checkpoint covering them is durably written.
func (l *Log) RemoveSegmentsBefore(keep uint64) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n >= keep {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(n))); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes and closes the log. Appends after Close return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		l.wg.Wait()
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	if err := l.f.Sync(); err != nil {
		_ = l.f.Close()
		return err
	}
	return l.f.Close()
}

// ReplayStats reports what a Replay pass found.
type ReplayStats struct {
	// Records is the number of intact records delivered.
	Records int
	// Segments is the number of segment files visited.
	Segments int
	// Truncated reports that the final segment ended in a torn or corrupt
	// record, which was discarded (the expected signature of a crash
	// mid-append).
	Truncated bool
	// DiscardedBytes is the size of the discarded tail, when Truncated.
	DiscardedBytes int64
}

// ErrCorrupt reports corruption before the final record of the final
// segment — unlike a torn tail, an interior hole cannot be skipped safely.
var ErrCorrupt = errors.New("wal: corrupt record before log tail")

// Replay reads every intact record in dir's segments in order, calling fn
// with each payload. A torn or CRC-corrupt record at the very tail of the
// last segment is discarded and reported in the stats, not as an error; the
// same damage anywhere earlier returns ErrCorrupt. fn returning an error
// stops the replay.
func Replay(dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	segs, err := listSegments(dir)
	if err != nil {
		return stats, err
	}
	for i, n := range segs {
		stats.Segments++
		last := i == len(segs)-1
		if err := replaySegment(filepath.Join(dir, segName(n)), last, &stats, fn); err != nil {
			return stats, err
		}
		if stats.Truncated {
			break
		}
	}
	return stats, nil
}

func replaySegment(path string, last bool, stats *ReplayStats, fn func([]byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	var off int64
	hdr := make([]byte, frameHeader)
	for off < size {
		bad := func() error {
			if last {
				stats.Truncated = true
				stats.DiscardedBytes = size - off
				return nil
			}
			return fmt.Errorf("%w: %s at offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		if _, err := io.ReadFull(f, hdr); err != nil {
			return bad()
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord || off+frameHeader+int64(n) > size {
			return bad()
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return bad()
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return bad()
		}
		if stats.Truncated {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
		stats.Records++
		off += frameHeader + int64(n)
	}
	return nil
}
