package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func appendAll(t *testing.T, l *Log, payloads ...[]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func collect(t *testing.T, dir string) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	stats, err := Replay(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return got, stats
}

func TestLogRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Policy: SyncAlways})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four-longer-payload")}
	appendAll(t, l, want...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, stats := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if stats.Truncated {
		t.Fatalf("unexpected truncation: %+v", stats)
	}
}

func TestLogReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l1, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	appendAll(t, l1, []byte("a"))
	seg1 := l1.Segment()
	if err := l1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if l2.Segment() <= seg1 {
		t.Fatalf("reopen segment %d, want > %d", l2.Segment(), seg1)
	}
	appendAll(t, l2, []byte("b"))
	got, _ := collect(t, dir)
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("replay across segments = %q", got)
	}
}

func TestLogRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	defer l.Close()
	appendAll(t, l, []byte("old-1"), []byte("old-2"))
	newSeg, err := l.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, []byte("new-1"))
	if err := l.RemoveSegmentsBefore(newSeg); err != nil {
		t.Fatalf("RemoveSegmentsBefore: %v", err)
	}
	got, _ := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "new-1" {
		t.Fatalf("after prune replay = %q, want [new-1]", got)
	}
}

func TestReplayTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	appendAll(t, l, []byte("keep-1"), []byte("keep-2"))
	seg := l.Segment()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: a torn frame at the tail (header says 100
	// bytes, only 3 present).
	path := filepath.Join(dir, segName(seg))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 100)
	if _, err := f.Write(append(hdr[:], 'x', 'y', 'z')); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	got, stats := collect(t, dir)
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	if !stats.Truncated || stats.DiscardedBytes == 0 {
		t.Fatalf("stats = %+v, want Truncated with discarded bytes", stats)
	}
}

func TestReplayCorruptCRCTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	appendAll(t, l, []byte("keep"), []byte("flipme"))
	seg := l.Segment()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip one payload byte of the final record: CRC now mismatches.
	path := filepath.Join(dir, segName(seg))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	got, stats := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "keep" {
		t.Fatalf("replay = %q, want [keep]", got)
	}
	if !stats.Truncated {
		t.Fatalf("stats = %+v, want Truncated", stats)
	}
}

func TestReplayInteriorCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	appendAll(t, l, []byte("first-segment"))
	seg := l.Segment()
	if _, err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, []byte("second-segment"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the non-final segment: that is an interior hole, not a torn
	// tail, and must be fatal.
	path := filepath.Join(dir, segName(seg))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	if _, err := Replay(dir, func([]byte) error { return nil }); err == nil {
		t.Fatalf("Replay of interior corruption succeeded, want error")
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{Policy: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.Append([]byte("interval")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil { // no-op under SyncInterval
		t.Fatalf("Sync: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, _ := collect(t, dir)
	if len(got) != 1 || string(got[0]) != "interval" {
		t.Fatalf("replay = %q", got)
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, Options{})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

func TestCheckpointLatestAndPrune(t *testing.T) {
	dir := t.TempDir()
	if e, v, p, err := LatestCheckpoint(dir); err != nil || p != nil || e != 0 || v != 0 {
		t.Fatalf("empty dir LatestCheckpoint = (%d, %d, %q, %v)", e, v, p, err)
	}
	for i := uint64(1); i <= 4; i++ {
		if err := WriteCheckpoint(dir, i*10, i, []byte(fmt.Sprintf("state-%d", i))); err != nil {
			t.Fatalf("WriteCheckpoint %d: %v", i, err)
		}
	}
	epoch, ver, payload, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if epoch != 40 || ver != 4 || string(payload) != "state-4" {
		t.Fatalf("latest = (%d, %d, %q)", epoch, ver, payload)
	}
	cks, err := listCheckpoints(dir)
	if err != nil {
		t.Fatalf("listCheckpoints: %v", err)
	}
	if len(cks) != ckptKeep {
		t.Fatalf("%d checkpoints retained, want %d", len(cks), ckptKeep)
	}
}

func TestCheckpointCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, 10, 1, []byte("good")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	if err := WriteCheckpoint(dir, 20, 2, []byte("newer")); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}
	// Corrupt the newest file's payload byte.
	path := filepath.Join(dir, ckptName(20, 2))
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}
	buf[len(buf)-1] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatalf("rewrite checkpoint: %v", err)
	}
	epoch, ver, payload, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatalf("LatestCheckpoint: %v", err)
	}
	if epoch != 10 || ver != 1 || string(payload) != "good" {
		t.Fatalf("fallback = (%d, %d, %q), want (10, 1, good)", epoch, ver, payload)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := map[string]SyncPolicy{"always": SyncAlways, "interval": SyncInterval, "none": SyncNone, "": SyncAlways}
	for in, want := range cases {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = (%v, %v), want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatalf("ParseSyncPolicy(bogus) succeeded")
	}
}
