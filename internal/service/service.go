// Package service hosts application services behind the promise manager,
// filling the "Application" role of the Figure 2 prototype (§8): "The
// responsibility of the application is to process the action request passed
// from the promise manager. The application uses a resource manager to keep
// the global system state."
//
// Services register named operations; the transport layer resolves an
// incoming <action> element to a registered handler and passes it to the
// promise manager for execution inside the request transaction. Handlers
// are written against the resource manager only — "coded without explicit
// knowledge of the PM or its promises".
package service

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/resource"
)

// Handler processes one action invocation. Params come from the wire
// message; the ActionContext provides transactional resource access.
type Handler func(params map[string]string, ac *core.ActionContext) (string, error)

// Registry maps action names to handlers. It is safe for concurrent use;
// registration normally happens at startup.
type Registry struct {
	mu       sync.RWMutex
	handlers map[string]Handler
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{handlers: make(map[string]Handler)}
}

// Register installs a handler. Re-registering a name replaces the handler.
func (r *Registry) Register(name string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handlers[name] = h
}

// Resolve returns the handler for name.
func (r *Registry) Resolve(name string) (Handler, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.handlers[name]
	if !ok {
		return nil, fmt.Errorf("service: no action registered as %q", name)
	}
	return h, nil
}

// ResolveAction implements core.ActionResolver, so a Registry can be set as
// Config.Actions and a local engine serves Request.ActionName exactly like
// a daemon serving wire <action> elements.
func (r *Registry) ResolveAction(name string) (core.NamedAction, error) {
	h, err := r.Resolve(name)
	if err != nil {
		return nil, err
	}
	return core.NamedAction(h), nil
}

// Names lists registered actions, sorted, for tooling.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.handlers))
	for n := range r.handlers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterStandard installs the generic resource operations used by the
// examples and the CLI:
//
//	adjust-pool   pool=<id> delta=<n>      — add/remove pool stock
//	pool-level    pool=<id>                — read quantity on hand
//	take-instance instance=<id>            — consume a named instance
//	release-instance instance=<id>         — return a taken instance
func RegisterStandard(r *Registry) {
	r.Register("adjust-pool", func(params map[string]string, ac *core.ActionContext) (string, error) {
		pool := params["pool"]
		delta, err := strconv.ParseInt(params["delta"], 10, 64)
		if err != nil {
			return "", fmt.Errorf("service: adjust-pool: bad delta %q", params["delta"])
		}
		next, err := ac.Resources.AdjustPool(ac.Tx, pool, delta)
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(next, 10), nil
	})
	r.Register("pool-level", func(params map[string]string, ac *core.ActionContext) (string, error) {
		p, err := ac.Resources.Pool(ac.Tx, params["pool"])
		if err != nil {
			return "", err
		}
		return strconv.FormatInt(p.OnHand, 10), nil
	})
	r.Register("take-instance", func(params map[string]string, ac *core.ActionContext) (string, error) {
		id := params["instance"]
		if err := ac.Resources.SetStatus(ac.Tx, id, resource.Taken); err != nil {
			return "", err
		}
		return id, nil
	})
	r.Register("release-instance", func(params map[string]string, ac *core.ActionContext) (string, error) {
		id := params["instance"]
		if err := ac.Resources.SetStatus(ac.Tx, id, resource.Available); err != nil {
			return "", err
		}
		return id, nil
	})
}
