package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/resource"
	"repro/internal/txn"
)

func newWorld(t *testing.T) (*Registry, *core.Manager) {
	t.Helper()
	m, err := core.New(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "w", 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Resources().CreateInstance(tx, "i", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	RegisterStandard(reg)
	return reg, m
}

// invoke runs a registered handler through the manager, as transport does.
func invoke(t *testing.T, reg *Registry, m *core.Manager, name string, params map[string]string) (string, error) {
	t.Helper()
	h, err := reg.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := m.Execute(bg, core.Request{
		Client: "tester",
		Action: func(ac *core.ActionContext) (any, error) {
			return h(params, ac)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ActionErr != nil {
		return "", resp.ActionErr
	}
	return resp.ActionResult.(string), nil
}

func TestResolveUnknown(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Resolve("nope"); err == nil {
		t.Fatal("unknown action resolved")
	}
}

func TestNames(t *testing.T) {
	reg, _ := newWorld(t)
	names := reg.Names()
	want := []string{"adjust-pool", "pool-level", "release-instance", "take-instance"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v", names)
	}
}

func TestRegisterReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.Register("x", func(map[string]string, *core.ActionContext) (string, error) { return "1", nil })
	reg.Register("x", func(map[string]string, *core.ActionContext) (string, error) { return "2", nil })
	h, _ := reg.Resolve("x")
	got, _ := h(nil, nil)
	if got != "2" {
		t.Fatalf("handler not replaced: %q", got)
	}
}

func TestAdjustPoolAndLevel(t *testing.T) {
	reg, m := newWorld(t)
	out, err := invoke(t, reg, m, "adjust-pool", map[string]string{"pool": "w", "delta": "-4"})
	if err != nil || out != "6" {
		t.Fatalf("adjust: %q %v", out, err)
	}
	out, err = invoke(t, reg, m, "pool-level", map[string]string{"pool": "w"})
	if err != nil || out != "6" {
		t.Fatalf("level: %q %v", out, err)
	}
	if _, err := invoke(t, reg, m, "adjust-pool", map[string]string{"pool": "w", "delta": "nan"}); err == nil {
		t.Fatal("bad delta accepted")
	}
	if _, err := invoke(t, reg, m, "adjust-pool", map[string]string{"pool": "w", "delta": "-100"}); err == nil {
		t.Fatal("overdraw accepted")
	}
	if _, err := invoke(t, reg, m, "pool-level", map[string]string{"pool": "ghost"}); err == nil {
		t.Fatal("missing pool accepted")
	}
}

func TestTakeAndReleaseInstance(t *testing.T) {
	reg, m := newWorld(t)
	out, err := invoke(t, reg, m, "take-instance", map[string]string{"instance": "i"})
	if err != nil || out != "i" {
		t.Fatalf("take: %q %v", out, err)
	}
	tx := m.Store().Begin(txn.Block)
	in, _ := m.Resources().Instance(tx, "i")
	if in.Status != resource.Taken {
		t.Fatalf("status = %v", in.Status)
	}
	_ = tx.Commit()
	if _, err := invoke(t, reg, m, "release-instance", map[string]string{"instance": "i"}); err != nil {
		t.Fatal(err)
	}
	tx = m.Store().Begin(txn.Block)
	defer tx.Commit()
	in, _ = m.Resources().Instance(tx, "i")
	if in.Status != resource.Available {
		t.Fatalf("status after release = %v", in.Status)
	}
}

// TestHandlersConcurrentOnShardedManager drives the standard handlers
// through a sharded manager from many goroutines — the daemon's actual
// concurrent configuration. Each worker consumes stock from its own pool
// under promise protection; final levels must account for every unit.
func TestHandlersConcurrentOnShardedManager(t *testing.T) {
	const workers = 8
	const iters = 40
	s, err := core.NewSharded(core.ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	RegisterStandard(reg)
	pools := make([]string, workers)
	for w := range pools {
		pools[w] = fmt.Sprintf("stock-%d", w)
		if err := s.CreatePool(pools[w], iters, nil); err != nil {
			t.Fatal(err)
		}
	}

	adjust, err := reg.Resolve("adjust-pool")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pool := pools[w]
			client := fmt.Sprintf("svc-%d", w)
			params := map[string]string{"pool": pool, "delta": "-1"}
			for i := 0; i < iters; i++ {
				grant, err := s.Execute(bg, core.Request{Client: client, PromiseRequests: []core.PromiseRequest{{
					Predicates: []core.Predicate{core.Quantity(pool, 1)},
				}}})
				if err != nil {
					t.Error(err)
					return
				}
				pr := grant.Promises[0]
				if !pr.Accepted {
					t.Errorf("grant rejected: %s", pr.Reason)
					return
				}
				resp, err := s.Execute(bg, core.Request{
					Client:    client,
					Env:       []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
					Resources: []string{pool},
					Action: func(ac *core.ActionContext) (any, error) {
						return adjust(params, ac)
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.ActionErr != nil {
					t.Errorf("adjust-pool: %v", resp.ActionErr)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for _, pool := range pools {
		lvl, err := s.PoolLevel(pool)
		if err != nil {
			t.Fatal(err)
		}
		if lvl != 0 {
			t.Errorf("pool %s level = %d, want 0", pool, lvl)
		}
	}
	rep, err := s.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("audit unhealthy: %s", rep)
	}
}

var bg = context.Background()
