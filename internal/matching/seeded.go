package matching

// SolveSeeded computes a left-saturating assignment with Kuhn's algorithm,
// seeded from a previous assignment, over an externally supplied candidate
// structure. It differs from Incremental in two ways that matter to callers
// holding long-lived matcher state (the promise manager's persistent property
// matcher, core/propmatch.go):
//
//   - adj restricts each left vertex to an explicit candidate list of right
//     indices (nil means "every right vertex"), so an index that can resolve
//     a predicate to its exact value class hands the solver a short list and
//     the solver never touches the rest of the world.
//   - there is no internal memo: edge is consulted directly, so a caller that
//     caches edge results across calls (not merely within one solve) supplies
//     its own cache and pays nothing to rebuild it here.
//
// initial seeds the matching (right partner per left vertex, Unmatched for
// none); seeds that are out of range, duplicated, or fail the edge oracle are
// ignored. Returns the assignment (right partner per left vertex) and whether
// every left vertex was saturated; on failure no partial assignment is
// returned.
func SolveSeeded(nLeft, nRight int, edge func(l, r int) bool, adj func(l int) []int, initial []int) ([]int, bool) {
	assignL := make([]int, nLeft)
	matchR := make([]int, nRight)
	for i := range assignL {
		assignL[i] = Unmatched
	}
	for j := range matchR {
		matchR[j] = Unmatched
	}
	for i, j := range initial {
		if i >= nLeft || j < 0 || j >= nRight {
			continue
		}
		if matchR[j] != Unmatched || !edge(i, j) {
			continue
		}
		assignL[i] = j
		matchR[j] = i
	}
	// candidates returns the right indices left vertex i may scan.
	all := make([]int, nRight)
	for j := range all {
		all[j] = j
	}
	candidates := func(i int) []int {
		if adj == nil {
			return all
		}
		if c := adj(i); c != nil {
			return c
		}
		return all
	}
	// Two-pass augmenting search, free-first: pass one claims a free right
	// vertex (one int check per candidate, one edge call on the winner);
	// only when every compatible candidate is taken does pass two walk
	// augmenting paths. Scan order never changes the matching size.
	seen := make([]bool, nRight)
	var try func(i int) bool
	try = func(i int) bool {
		cs := candidates(i)
		for _, j := range cs {
			if j < 0 || j >= nRight {
				continue
			}
			if matchR[j] == Unmatched && !seen[j] && edge(i, j) {
				assignL[i] = j
				matchR[j] = i
				return true
			}
		}
		for _, j := range cs {
			if j < 0 || j >= nRight {
				continue
			}
			if seen[j] || !edge(i, j) {
				continue
			}
			seen[j] = true
			if try(matchR[j]) {
				assignL[i] = j
				matchR[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < nLeft; i++ {
		if assignL[i] != Unmatched {
			continue
		}
		for k := range seen {
			seen[k] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	return assignL, true
}
