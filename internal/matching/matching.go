// Package matching implements bipartite maximum matching for property-view
// promise checking. Paper §5 ("Satisfiability Check"): "This might be done
// by finding a matching in a bipartite graph where edges link the untaken
// resources to the promise predicates that they can satisfy." And §9: "With
// property views, promise satisfiability can require a graph matching
// algorithm, whereas integrity satisfiability is just logical
// satisfiability."
//
// The left vertex set holds promise predicates, the right set holds
// available resource instances; an edge (p, r) means instance r satisfies
// predicate p. The set of promises is jointly satisfiable exactly when a
// matching saturates the left side — each promise can be assigned its own
// distinct instance (§3.2: one instance cannot back two promises).
//
// The package provides Hopcroft–Karp (O(E·sqrt(V))) as the production
// algorithm and an exponential brute-force oracle used by property-based
// tests to validate it.
package matching

import "fmt"

// Unmatched marks a vertex with no partner in a matching.
const Unmatched = -1

// Graph is a bipartite graph over left vertices 0..NLeft-1 and right
// vertices 0..NRight-1.
type Graph struct {
	nLeft, nRight int
	adj           [][]int // adj[l] = right neighbours of l
}

// NewGraph returns an empty bipartite graph with the given part sizes.
func NewGraph(nLeft, nRight int) *Graph {
	return &Graph{nLeft: nLeft, nRight: nRight, adj: make([][]int, nLeft)}
}

// NLeft returns the size of the left part.
func (g *Graph) NLeft() int { return g.nLeft }

// NRight returns the size of the right part.
func (g *Graph) NRight() int { return g.nRight }

// AddEdge connects left vertex l to right vertex r. Out-of-range vertices
// panic: graph construction bugs must not silently weaken promise checking.
func (g *Graph) AddEdge(l, r int) {
	if l < 0 || l >= g.nLeft || r < 0 || r >= g.nRight {
		panic(fmt.Sprintf("matching: edge (%d,%d) out of range %dx%d", l, r, g.nLeft, g.nRight))
	}
	g.adj[l] = append(g.adj[l], r)
}

// Adj returns the neighbours of left vertex l (shared slice; do not modify).
func (g *Graph) Adj(l int) []int { return g.adj[l] }

// MaxMatching computes a maximum matching with Hopcroft–Karp. It returns
// the matching size and the assignment matchL where matchL[l] is the right
// partner of l or Unmatched.
func (g *Graph) MaxMatching() (int, []int) {
	const inf = int(^uint(0) >> 1)
	matchL := make([]int, g.nLeft)
	matchR := make([]int, g.nRight)
	for i := range matchL {
		matchL[i] = Unmatched
	}
	for i := range matchR {
		matchR[i] = Unmatched
	}
	dist := make([]int, g.nLeft)
	queue := make([]int, 0, g.nLeft)

	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < g.nLeft; l++ {
			if matchL[l] == Unmatched {
				dist[l] = 0
				queue = append(queue, l)
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.adj[l] {
				nl := matchR[r]
				if nl == Unmatched {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}

	var dfs func(l int) bool
	dfs = func(l int) bool {
		for _, r := range g.adj[l] {
			nl := matchR[r]
			if nl == Unmatched || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = l
				return true
			}
		}
		dist[l] = inf
		return false
	}

	size := 0
	for bfs() {
		for l := 0; l < g.nLeft; l++ {
			if matchL[l] == Unmatched && dfs(l) {
				size++
			}
		}
	}
	return size, matchL
}

// SaturatesLeft reports whether every left vertex (promise) can be matched,
// i.e. the promise set is jointly satisfiable, returning the assignment
// when it is.
func (g *Graph) SaturatesLeft() ([]int, bool) {
	size, matchL := g.MaxMatching()
	return matchL, size == g.nLeft
}

// BruteMaxMatching computes the maximum matching size by exhaustive
// backtracking. Exponential; only for cross-checking Hopcroft–Karp in tests
// on small graphs.
func BruteMaxMatching(g *Graph) int {
	usedR := make([]bool, g.nRight)
	best := 0
	var rec func(l, size int)
	rec = func(l, size int) {
		if size+(g.nLeft-l) <= best {
			return // prune: cannot beat best
		}
		if l == g.nLeft {
			if size > best {
				best = size
			}
			return
		}
		// Option 1: leave l unmatched.
		rec(l+1, size)
		// Option 2: match l to each free neighbour.
		for _, r := range g.adj[l] {
			if !usedR[r] {
				usedR[r] = true
				rec(l+1, size+1)
				usedR[r] = false
			}
		}
	}
	rec(0, 0)
	return best
}

// VerifyMatching checks that matchL is a valid matching for g: partners in
// range, edges exist, and no right vertex used twice. Tests use it to
// validate assignments returned by MaxMatching.
func VerifyMatching(g *Graph, matchL []int) error {
	if len(matchL) != g.nLeft {
		return fmt.Errorf("matching: assignment length %d, want %d", len(matchL), g.nLeft)
	}
	seen := make(map[int]int)
	for l, r := range matchL {
		if r == Unmatched {
			continue
		}
		if r < 0 || r >= g.nRight {
			return fmt.Errorf("matching: l=%d matched to out-of-range r=%d", l, r)
		}
		ok := false
		for _, n := range g.adj[l] {
			if n == r {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("matching: l=%d matched to non-neighbour r=%d", l, r)
		}
		if prev, dup := seen[r]; dup {
			return fmt.Errorf("matching: right vertex %d used by both l=%d and l=%d", r, prev, l)
		}
		seen[r] = l
	}
	return nil
}
