package matching

import (
	"math/rand"
	"testing"
)

// TestSolveSeededMatchesReference cross-checks SolveSeeded against both
// Hopcroft–Karp and the brute-force oracle on random graphs, with random
// (often invalid) seeds and with adjacency lists that are either nil (scan
// everything) or exact candidate lists.
func TestSolveSeededMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(10)
		edges := make(map[[2]int]bool)
		g := NewGraph(nL, nR)
		adjLists := make([][]int, nL)
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Intn(3) == 0 {
					edges[[2]int{l, r}] = true
					g.AddEdge(l, r)
					adjLists[l] = append(adjLists[l], r)
				}
			}
		}
		size, _ := g.MaxMatching()
		brute := BruteMaxMatching(g)
		if size != brute {
			t.Fatalf("trial %d: Hopcroft–Karp %d != brute %d", trial, size, brute)
		}
		seed := make([]int, nL)
		for i := range seed {
			seed[i] = rng.Intn(nR+2) - 1
		}
		edge := func(l, r int) bool { return edges[[2]int{l, r}] }

		// Variant 1: nil adj (full scan).
		assign, ok := SolveSeeded(nL, nR, edge, nil, seed)
		if ok != (size == nL) {
			t.Fatalf("trial %d: nil-adj ok=%v, max matching %d/%d", trial, ok, size, nL)
		}
		if ok {
			if err := VerifyMatching(g, assign); err != nil {
				t.Fatalf("trial %d: nil-adj: %v", trial, err)
			}
		}

		// Variant 2: exact adjacency lists. A left vertex with no edges gets
		// an empty (non-nil) list, which must mean "no candidates", not
		// "scan everything".
		adj := func(l int) []int {
			if adjLists[l] == nil {
				return []int{}
			}
			return adjLists[l]
		}
		assign2, ok2 := SolveSeeded(nL, nR, edge, adj, seed)
		if ok2 != (size == nL) {
			t.Fatalf("trial %d: adj ok=%v, max matching %d/%d", trial, ok2, size, nL)
		}
		if ok2 {
			if err := VerifyMatching(g, assign2); err != nil {
				t.Fatalf("trial %d: adj: %v", trial, err)
			}
		}

		// Variant 3: adjacency lists padded with non-edges and out-of-range
		// junk — the solver must filter by the edge oracle and bounds.
		adjJunk := func(l int) []int {
			padded := append([]int{-3, nR, nR + 5}, adjLists[l]...)
			return append(padded, rng.Intn(nR))
		}
		assign3, ok3 := SolveSeeded(nL, nR, edge, adjJunk, seed)
		if ok3 != (size == nL) {
			t.Fatalf("trial %d: junk-adj ok=%v, max matching %d/%d", trial, ok3, size, nL)
		}
		if ok3 {
			if err := VerifyMatching(g, assign3); err != nil {
				t.Fatalf("trial %d: junk-adj: %v", trial, err)
			}
		}
	}
}

// TestSolveSeededSeedPreserved mirrors the Incremental seed-stability
// contract: a valid seeded partner survives when an alternative exists for
// the newcomer.
func TestSolveSeededSeedPreserved(t *testing.T) {
	edges := map[[2]int]bool{{0, 1}: true, {1, 0}: true, {1, 1}: true}
	edge := func(l, r int) bool { return edges[[2]int{l, r}] }
	assign, ok := SolveSeeded(2, 2, edge, nil, []int{1, Unmatched})
	if !ok {
		t.Fatal("must saturate")
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", assign)
	}
}

// TestSolveSeededFreeFirstEvalBound pins the free-first optimization: on the
// triangular graph (left i connects to right j for j >= i) with no seeds,
// every left vertex finds a free partner in pass one, so the oracle runs
// O(n) times — not the O(n^2) a recursion-first scan pays.
func TestSolveSeededFreeFirstEvalBound(t *testing.T) {
	const n = 64
	evals := 0
	edge := func(l, r int) bool {
		evals++
		return r >= l
	}
	assign, ok := SolveSeeded(n, n, edge, nil, nil)
	if !ok {
		t.Fatal("triangular graph must saturate")
	}
	tri := NewGraph(n, n)
	for l := 0; l < n; l++ {
		for r := l; r < n; r++ {
			tri.AddEdge(l, r)
		}
	}
	if err := VerifyMatching(tri, assign); err != nil {
		t.Fatal(err)
	}
	// Pass one takes right vertex i for left vertex i immediately (all
	// earlier right vertices are taken, checked by the int guard before the
	// oracle fires; right i is free and r >= l holds). One extra call per
	// vertex is tolerated for slack.
	if evals > 3*n {
		t.Fatalf("%d oracle calls for n=%d — free-first pass not engaged", evals, n)
	}
}
