package matching

// Incremental grows a maximum matching from a seeded partial assignment,
// evaluating edges lazily through an oracle — Kuhn's algorithm with
// augmenting paths. By the augmenting-path theorem a maximum matching can be
// grown from any valid partial matching, so a caller that already holds a
// correct assignment for most left vertices (the promise manager's tentative
// allocations, or one shard's slice of a cross-shard match) only pays for
// the new or displaced vertices, and only evaluates the edges those
// augmenting paths actually walk.
//
// The edge oracle makes the structure reusable for constrained bipartite
// problems: the cross-shard coordinator passes an oracle that admits an edge
// only when predicate satisfaction AND shard co-location both hold, without
// this package knowing what a shard is. Graph (eager, Hopcroft–Karp) remains
// the reference implementation; property-based tests cross-check the two.
type Incremental struct {
	nLeft, nRight int
	edge          func(l, r int) bool
	// memo caches oracle calls: 0 unknown, 1 edge, 2 no edge.
	memo []int8
}

// NewIncremental returns an incremental matcher over nLeft x nRight vertices
// whose edges are decided by the oracle. The oracle must be deterministic
// for the matcher's lifetime; each pair is evaluated at most once.
func NewIncremental(nLeft, nRight int, edge func(l, r int) bool) *Incremental {
	return &Incremental{
		nLeft:  nLeft,
		nRight: nRight,
		edge:   edge,
		memo:   make([]int8, nLeft*nRight),
	}
}

// Edge reports whether left vertex l connects to right vertex r, consulting
// the oracle on first use and the memo afterwards.
func (inc *Incremental) Edge(l, r int) bool {
	k := l*inc.nRight + r
	if inc.memo[k] == 0 {
		if inc.edge(l, r) {
			inc.memo[k] = 1
		} else {
			inc.memo[k] = 2
		}
	}
	return inc.memo[k] == 1
}

// Solve computes an assignment saturating every left vertex, seeded from
// initial (right partner per left vertex, Unmatched for none). Seeds that
// are out of range, duplicated, or not actual edges are treated as
// unassigned. It returns the assignment (right partner per left vertex) and
// whether saturation succeeded; on failure the partial assignment is not
// returned.
func (inc *Incremental) Solve(initial []int) ([]int, bool) {
	assignL := make([]int, inc.nLeft)
	matchR := make([]int, inc.nRight)
	for i := range assignL {
		assignL[i] = Unmatched
	}
	for j := range matchR {
		matchR[j] = Unmatched
	}
	// Seed from still-valid previous partners.
	for i, j := range initial {
		if i >= inc.nLeft || j < 0 || j >= inc.nRight {
			continue
		}
		if matchR[j] != Unmatched || !inc.Edge(i, j) {
			continue
		}
		assignL[i] = j
		matchR[j] = i
	}
	// Augment each unassigned left vertex. Each search runs in two passes:
	// the first claims a free right vertex when one exists — the common case,
	// found with one cheap integer check per vertex and a single oracle call
	// on the free one — and only when every compatible right vertex is taken
	// does the second pass walk augmenting paths. The ordering does not
	// change the result (Kuhn's algorithm is correct for any scan order); it
	// changes the cost of the dense case from O(edges-evaluated) recursion to
	// mostly integer scans, which is what keeps an unseeded solve within
	// sight of a seeded one.
	seen := make([]bool, inc.nRight)
	var try func(i int) bool
	try = func(i int) bool {
		for j := 0; j < inc.nRight; j++ {
			if matchR[j] == Unmatched && !seen[j] && inc.Edge(i, j) {
				assignL[i] = j
				matchR[j] = i
				return true
			}
		}
		for j := 0; j < inc.nRight; j++ {
			if seen[j] || !inc.Edge(i, j) {
				continue
			}
			seen[j] = true
			if try(matchR[j]) {
				assignL[i] = j
				matchR[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < inc.nLeft; i++ {
		if assignL[i] != Unmatched {
			continue
		}
		for k := range seen {
			seen[k] = false
		}
		if !try(i) {
			return nil, false
		}
	}
	return assignL, true
}
