package matching

import (
	"math/rand"
	"testing"
)

func TestIncrementalSimpleSaturation(t *testing.T) {
	// 2x2 identity graph: both left vertices saturate.
	inc := NewIncremental(2, 2, func(l, r int) bool { return l == r })
	assign, ok := inc.Solve([]int{Unmatched, Unmatched})
	if !ok {
		t.Fatal("identity graph must saturate")
	}
	if assign[0] != 0 || assign[1] != 1 {
		t.Fatalf("assign = %v", assign)
	}
}

func TestIncrementalInfeasible(t *testing.T) {
	// Two left vertices competing for one right vertex.
	inc := NewIncremental(2, 1, func(l, r int) bool { return true })
	if _, ok := inc.Solve([]int{Unmatched, Unmatched}); ok {
		t.Fatal("2 left over 1 right cannot saturate")
	}
}

func TestIncrementalBadSeedsIgnored(t *testing.T) {
	// Out-of-range, duplicate, and non-edge seeds must all be treated as
	// unassigned rather than corrupting the matching.
	inc := NewIncremental(3, 3, func(l, r int) bool { return l == r })
	assign, ok := inc.Solve([]int{7, 0, 0}) // 7 out of range; 0 not an edge for l=1,2
	if !ok {
		t.Fatal("identity graph must saturate despite bad seeds")
	}
	for i, j := range assign {
		if i != j {
			t.Fatalf("assign = %v, want identity", assign)
		}
	}
}

func TestIncrementalSeedPreserved(t *testing.T) {
	// A valid seed assignment must survive: augmenting runs only for the
	// unassigned vertex, and it must not steal the seeded partner when an
	// alternative exists.
	edges := map[[2]int]bool{{0, 1}: true, {1, 0}: true, {1, 1}: true}
	inc := NewIncremental(2, 2, func(l, r int) bool { return edges[[2]int{l, r}] })
	assign, ok := inc.Solve([]int{1, Unmatched})
	if !ok {
		t.Fatal("must saturate")
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", assign)
	}
}

func TestIncrementalAugmentsThroughSeeds(t *testing.T) {
	// The new vertex's only edge is taken by a seeded one, which must be
	// displaced along an augmenting path (the §5 rearrangement).
	edges := map[[2]int]bool{{0, 0}: true, {0, 1}: true, {1, 0}: true}
	inc := NewIncremental(2, 2, func(l, r int) bool { return edges[[2]int{l, r}] })
	assign, ok := inc.Solve([]int{0, Unmatched})
	if !ok {
		t.Fatal("must saturate by displacing the seed")
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", assign)
	}
}

// TestIncrementalMatchesHopcroftKarp cross-checks the two implementations:
// for random graphs, the incremental matcher saturates the left side
// exactly when Hopcroft–Karp finds a maximum matching of size nLeft, for
// any seeding.
func TestIncrementalMatchesHopcroftKarp(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nL := 1 + rng.Intn(8)
		nR := 1 + rng.Intn(10)
		edges := make(map[[2]int]bool)
		g := NewGraph(nL, nR)
		for l := 0; l < nL; l++ {
			for r := 0; r < nR; r++ {
				if rng.Intn(3) == 0 {
					edges[[2]int{l, r}] = true
					g.AddEdge(l, r)
				}
			}
		}
		size, ref := g.MaxMatching()
		// Random (often invalid) seeds must not change the verdict.
		seed := make([]int, nL)
		for i := range seed {
			seed[i] = rng.Intn(nR+2) - 1
		}
		evals := 0
		inc := NewIncremental(nL, nR, func(l, r int) bool {
			evals++
			return edges[[2]int{l, r}]
		})
		assign, ok := inc.Solve(seed)
		if ok != (size == nL) {
			t.Fatalf("trial %d: incremental ok=%v, Hopcroft–Karp size=%d/%d (ref %v)", trial, ok, size, nL, ref)
		}
		if evals > nL*nR {
			t.Fatalf("trial %d: %d oracle calls for %d pairs — memo broken", trial, evals, nL*nR)
		}
		if !ok {
			continue
		}
		// The assignment must be a valid saturating matching.
		seen := make(map[int]bool)
		for l, r := range assign {
			if r < 0 || r >= nR || !edges[[2]int{l, r}] || seen[r] {
				t.Fatalf("trial %d: invalid assignment %v", trial, assign)
			}
			seen[r] = true
		}
	}
}
