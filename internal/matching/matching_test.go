package matching

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyGraph(t *testing.T) {
	g := NewGraph(0, 0)
	size, matchL := g.MaxMatching()
	if size != 0 || len(matchL) != 0 {
		t.Fatalf("empty: size=%d matchL=%v", size, matchL)
	}
	if _, ok := g.SaturatesLeft(); !ok {
		t.Fatal("empty left side is trivially saturated")
	}
}

func TestNoEdges(t *testing.T) {
	g := NewGraph(3, 3)
	size, matchL := g.MaxMatching()
	if size != 0 {
		t.Fatalf("size = %d", size)
	}
	for l, r := range matchL {
		if r != Unmatched {
			t.Fatalf("l=%d matched to %d with no edges", l, r)
		}
	}
	if _, ok := g.SaturatesLeft(); ok {
		t.Fatal("saturated with no edges")
	}
}

func TestPerfectMatching(t *testing.T) {
	g := NewGraph(3, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			g.AddEdge(i, j)
		}
	}
	size, matchL := g.MaxMatching()
	if size != 3 {
		t.Fatalf("size = %d", size)
	}
	if err := VerifyMatching(g, matchL); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.SaturatesLeft(); !ok {
		t.Fatal("complete bipartite graph should saturate")
	}
}

func TestHotelRoomScenario(t *testing.T) {
	// §3.3: "one customer may be asking for a room with a view, while
	// another might be requesting any 5th floor room. Room 512 could be a
	// suitable available resource that would allow the promise manager to
	// grant either of these requests, but the manager has to ensure that
	// the same room is not allocated to both requests at once."
	//
	// Rooms: 0 = room 512 (view, 5th floor); 1 = room 316 (view only).
	// Promises: 0 = wants view, 1 = wants 5th floor.
	g := NewGraph(2, 2)
	g.AddEdge(0, 0) // view -> 512
	g.AddEdge(0, 1) // view -> 316
	g.AddEdge(1, 0) // 5th floor -> 512 only
	matchL, ok := g.SaturatesLeft()
	if !ok {
		t.Fatal("both promises should be grantable")
	}
	if matchL[1] != 0 {
		t.Fatalf("5th-floor promise must take room 512, got %d", matchL[1])
	}
	if matchL[0] != 1 {
		t.Fatalf("view promise must be displaced to room 316, got %d", matchL[0])
	}

	// With only room 512 available, the two promises conflict.
	g2 := NewGraph(2, 1)
	g2.AddEdge(0, 0)
	g2.AddEdge(1, 0)
	if _, ok := g2.SaturatesLeft(); ok {
		t.Fatal("one room cannot back two promises")
	}
}

func TestAugmentingPathReassignment(t *testing.T) {
	// Chain structure forcing reassignments: l0-{r0}, l1-{r0,r1}, l2-{r1,r2}.
	g := NewGraph(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	g.AddEdge(1, 1)
	g.AddEdge(2, 1)
	g.AddEdge(2, 2)
	size, matchL := g.MaxMatching()
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if err := VerifyMatching(g, matchL); err != nil {
		t.Fatal(err)
	}
	if matchL[0] != 0 || matchL[1] != 1 || matchL[2] != 2 {
		t.Fatalf("forced assignment wrong: %v", matchL)
	}
}

func TestUnbalancedGraphs(t *testing.T) {
	// More promises than resources: saturation impossible.
	g := NewGraph(4, 2)
	for l := 0; l < 4; l++ {
		for r := 0; r < 2; r++ {
			g.AddEdge(l, r)
		}
	}
	size, _ := g.MaxMatching()
	if size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	// More resources than promises: fine.
	g2 := NewGraph(2, 5)
	g2.AddEdge(0, 4)
	g2.AddEdge(1, 4)
	g2.AddEdge(1, 0)
	matchL, ok := g2.SaturatesLeft()
	if !ok {
		t.Fatalf("should saturate: %v", matchL)
	}
	if err := VerifyMatching(g2, matchL); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateEdgesHarmless(t *testing.T) {
	g := NewGraph(1, 1)
	g.AddEdge(0, 0)
	g.AddEdge(0, 0)
	size, matchL := g.MaxMatching()
	if size != 1 || matchL[0] != 0 {
		t.Fatalf("size=%d matchL=%v", size, matchL)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	cases := [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d,%d) did not panic", c[0], c[1])
				}
			}()
			g := NewGraph(2, 2)
			g.AddEdge(c[0], c[1])
		}()
	}
}

func TestVerifyMatchingCatchesBadAssignments(t *testing.T) {
	g := NewGraph(2, 2)
	g.AddEdge(0, 0)
	g.AddEdge(1, 0)
	if err := VerifyMatching(g, []int{0}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := VerifyMatching(g, []int{1, Unmatched}); err == nil {
		t.Fatal("non-neighbour accepted")
	}
	if err := VerifyMatching(g, []int{0, 0}); err == nil {
		t.Fatal("duplicate right vertex accepted")
	}
	if err := VerifyMatching(g, []int{5, Unmatched}); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := VerifyMatching(g, []int{0, Unmatched}); err != nil {
		t.Fatalf("valid partial matching rejected: %v", err)
	}
}

func randomGraph(r *rand.Rand, maxL, maxR int, p float64) *Graph {
	nl := r.Intn(maxL + 1)
	nr := r.Intn(maxR + 1)
	g := NewGraph(nl, nr)
	for l := 0; l < nl; l++ {
		for rr := 0; rr < nr; rr++ {
			if r.Float64() < p {
				g.AddEdge(l, rr)
			}
		}
	}
	return g
}

// TestQuickHopcroftKarpMatchesBruteForce cross-checks the production
// algorithm against exhaustive search on random small graphs.
func TestQuickHopcroftKarpMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 7, 7, 0.2+0.6*r.Float64())
		size, matchL := g.MaxMatching()
		if err := VerifyMatching(g, matchL); err != nil {
			t.Logf("invalid matching: %v", err)
			return false
		}
		// Matching size must equal the number of matched left vertices.
		matched := 0
		for _, m := range matchL {
			if m != Unmatched {
				matched++
			}
		}
		if matched != size {
			t.Logf("size %d but %d matched vertices", size, matched)
			return false
		}
		if brute := BruteMaxMatching(g); brute != size {
			t.Logf("HK=%d brute=%d on %d x %d", size, brute, g.NLeft(), g.NRight())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMatchingMonotonic: adding a resource never shrinks the matching.
func TestQuickMatchingMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 6, 6, 0.4)
		before, _ := g.MaxMatching()
		// Extend with one extra right vertex connected to random lefts.
		g2 := NewGraph(g.NLeft(), g.NRight()+1)
		for l := 0; l < g.NLeft(); l++ {
			for _, rr := range g.Adj(l) {
				g2.AddEdge(l, rr)
			}
			if r.Intn(2) == 0 {
				g2.AddEdge(l, g.NRight())
			}
		}
		after, _ := g2.MaxMatching()
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeGraphPerformanceSanity(t *testing.T) {
	// 1000x1000 with ~5 edges per left vertex must complete instantly and
	// produce a verified matching.
	r := rand.New(rand.NewSource(42))
	g := NewGraph(1000, 1000)
	for l := 0; l < 1000; l++ {
		for k := 0; k < 5; k++ {
			g.AddEdge(l, r.Intn(1000))
		}
	}
	size, matchL := g.MaxMatching()
	if err := VerifyMatching(g, matchL); err != nil {
		t.Fatal(err)
	}
	if size < 900 {
		t.Fatalf("suspiciously small matching %d on dense-ish random graph", size)
	}
}
