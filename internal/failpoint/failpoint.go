// Package failpoint is a tiny fault-injection harness for deterministic
// robustness tests and chaos smokes. Call sites name a point and evaluate
// it (Eval); operators arm points with a spec string via the
// PROMISES_FAILPOINTS environment variable, promised's -failpoints flag,
// or at runtime through the daemon's /failpoints endpoint.
//
// The disabled path costs one atomic load and no allocation, so hooks can
// live on hot paths (WAL appends, HTTP handlers) without a build tag.
//
// Spec grammar — semicolon-separated name=action pairs:
//
//	wal/sync=error(disk gone)          fail with an injected error
//	transport/handle=sleep(50ms)       sleep, then proceed
//	wal/append=2*error(boom)           fire twice, then disarm
//	wal/sync=off                       disarm the point
//
// Point names are free-form; the convention is "<package>/<site>".
package failpoint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// armed counts currently armed points; Eval's fast path is a single load
// of it. It is global on purpose: failpoints are a process-wide test and
// operations facility, not per-engine configuration.
var armed atomic.Int64

var (
	mu     sync.Mutex
	points = map[string]*point{}
)

type point struct {
	err       error         // non-nil: Eval returns it
	delay     time.Duration // non-zero: Eval sleeps first
	remaining int           // >0: fire this many times then disarm; <0: unlimited
}

// Enabled reports whether any failpoint is armed. Hot call sites may use
// it to skip building Eval arguments.
func Enabled() bool { return armed.Load() != 0 }

// Eval evaluates the named point. When the point is disarmed (the common
// case) it returns nil after one atomic load. A sleep action blocks for
// its duration; an error action returns the injected error.
func Eval(name string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p := points[name]
	if p == nil {
		mu.Unlock()
		return nil
	}
	err, delay := p.err, p.delay
	if p.remaining > 0 {
		p.remaining--
		if p.remaining == 0 {
			delete(points, name)
			armed.Add(-1)
		}
	}
	mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Arm parses a spec string (see the package comment) and arms, re-arms or
// disarms the named points. An empty spec is a no-op. Arming is atomic per
// pair: a malformed pair reports an error without disturbing points armed
// by earlier pairs.
func Arm(spec string) error {
	for _, pair := range strings.Split(spec, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, action, ok := strings.Cut(pair, "=")
		name, action = strings.TrimSpace(name), strings.TrimSpace(action)
		if !ok || name == "" || action == "" {
			return fmt.Errorf("failpoint: malformed pair %q (want name=action)", pair)
		}
		if action == "off" {
			Disarm(name)
			continue
		}
		p, err := parseAction(name, action)
		if err != nil {
			return err
		}
		mu.Lock()
		if _, exists := points[name]; !exists {
			armed.Add(1)
		}
		points[name] = p
		mu.Unlock()
	}
	return nil
}

// parseAction parses "[N*]error(msg)" or "[N*]sleep(duration)".
func parseAction(name, action string) (*point, error) {
	p := &point{remaining: -1}
	if count, rest, ok := strings.Cut(action, "*"); ok && !strings.Contains(count, "(") {
		n, err := strconv.Atoi(strings.TrimSpace(count))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("failpoint: bad count in %q", action)
		}
		p.remaining = n
		action = strings.TrimSpace(rest)
	}
	verb, arg, ok := strings.Cut(action, "(")
	if !ok || !strings.HasSuffix(arg, ")") {
		return nil, fmt.Errorf("failpoint: malformed action %q (want error(msg) or sleep(duration))", action)
	}
	arg = strings.TrimSuffix(arg, ")")
	switch verb {
	case "error":
		if arg == "" {
			arg = "injected"
		}
		p.err = &Error{Point: name, Msg: arg}
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return nil, fmt.Errorf("failpoint: bad sleep duration %q: %v", arg, err)
		}
		p.delay = d
	default:
		return nil, fmt.Errorf("failpoint: unknown action %q (want error or sleep)", verb)
	}
	return p, nil
}

// Disarm removes the named point, if armed.
func Disarm(name string) {
	mu.Lock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point. Tests defer it so armed points never leak
// across test cases.
func Reset() {
	mu.Lock()
	for name := range points {
		delete(points, name)
		armed.Add(-1)
	}
	mu.Unlock()
}

// List returns the armed points as "name=state" strings, sorted, for the
// daemon's /failpoints endpoint.
func List() []string {
	mu.Lock()
	defer mu.Unlock()
	out := make([]string, 0, len(points))
	for name, p := range points {
		var action string
		switch {
		case p.err != nil:
			action = fmt.Sprintf("error(%s)", p.err.(*Error).Msg)
		default:
			action = fmt.Sprintf("sleep(%s)", p.delay)
		}
		if p.remaining > 0 {
			action = fmt.Sprintf("%d*%s", p.remaining, action)
		}
		out = append(out, name+"="+action)
	}
	sort.Strings(out)
	return out
}

// Error is the error an error-action failpoint injects. Call sites and
// tests can detect injected faults with errors.As.
type Error struct {
	Point string
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("failpoint %s: %s", e.Point, e.Msg) }
