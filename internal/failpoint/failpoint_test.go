package failpoint

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	if Enabled() {
		t.Fatal("enabled with nothing armed")
	}
	if err := Eval("never/armed"); err != nil {
		t.Fatalf("Eval = %v", err)
	}
}

func TestArmErrorAndDisarm(t *testing.T) {
	defer Reset()
	if err := Arm("wal/sync=error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("not enabled after Arm")
	}
	err := Eval("wal/sync")
	var fe *Error
	if !errors.As(err, &fe) || fe.Point != "wal/sync" || fe.Msg != "disk gone" {
		t.Fatalf("Eval = %v", err)
	}
	if err := Eval("wal/append"); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
	if err := Arm("wal/sync=off"); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("still enabled after off")
	}
	if err := Eval("wal/sync"); err != nil {
		t.Fatalf("fired after disarm: %v", err)
	}
}

func TestCountedPointAutoDisarms(t *testing.T) {
	defer Reset()
	if err := Arm("p=2*error(x)"); err != nil {
		t.Fatal(err)
	}
	if Eval("p") == nil || Eval("p") == nil {
		t.Fatal("counted point did not fire")
	}
	if Eval("p") != nil {
		t.Fatal("fired past its count")
	}
	if Enabled() {
		t.Fatal("still enabled after count exhausted")
	}
}

func TestSleepAction(t *testing.T) {
	defer Reset()
	if err := Arm("slow=sleep(10ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Eval("slow"); err != nil {
		t.Fatalf("sleep returned error: %v", err)
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("sleep action did not sleep")
	}
}

func TestMalformedSpecs(t *testing.T) {
	defer Reset()
	for _, spec := range []string{"noequals", "x=", "=y", "x=explode(now)", "x=sleep(fast)", "x=0*error(y)"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	if Enabled() {
		t.Fatal("malformed specs armed something")
	}
}

func TestMultiPairSpecAndList(t *testing.T) {
	defer Reset()
	if err := Arm("a=error(1); b=sleep(5ms)"); err != nil {
		t.Fatal(err)
	}
	got := List()
	if len(got) != 2 || got[0] != "a=error(1)" || got[1] != "b=sleep(5ms)" {
		t.Fatalf("List = %v", got)
	}
}
