package preemption

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

var t0 = time.Date(2007, 1, 7, 0, 0, 0, 0, time.UTC)

// cand builds a candidate expiring m minutes from the epoch.
func cand(id string, prio, m int) Candidate {
	return Candidate{ID: id, Priority: prio, Expires: t0.Add(time.Duration(m) * time.Minute), Client: "c", Sig: "s"}
}

// qtyOracle models uniform one-unit holds on a single contended pool:
// feasibility needs at least `need` victims.
func qtyOracle(need int) func([]Candidate) (bool, error) {
	return func(set []Candidate) (bool, error) { return len(set) >= need, nil }
}

func ids(set []Candidate) string {
	out := ""
	for i, c := range set {
		if i > 0 {
			out += ","
		}
		out += c.ID
	}
	return out
}

func TestSelectOldestDeadlineFirst(t *testing.T) {
	cands := []Candidate{cand("late", 0, 30), cand("early", 0, 5), cand("mid", 0, 15)}
	set, err := Select(cands, qtyOracle(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(set); got != "early,mid" {
		t.Fatalf("victims = %s, want early,mid (oldest deadlines first)", got)
	}
}

func TestSelectTieBreaks(t *testing.T) {
	// Same deadline throughout: lower tier loses first, then client, then
	// signature — engine-independent identity before any id comparison.
	cands := []Candidate{
		{ID: "x", Priority: 2, Expires: t0, Client: "bob", Sig: "s"},
		{ID: "y", Priority: 0, Expires: t0, Client: "bob", Sig: "s"},
		{ID: "z", Priority: 0, Expires: t0, Client: "alice", Sig: "s"},
	}
	set, err := Select(cands, qtyOracle(1))
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(set); got != "z" {
		t.Fatalf("victim = %s, want z (lowest tier, then client order)", got)
	}
}

// The grow pass may admit candidates that contribute nothing; the prune
// pass must drop them, leaving an inclusion-minimal set skewed to the
// oldest deadlines.
func TestSelectPrunesIrrelevantCandidates(t *testing.T) {
	// Only "hit" candidates free the contended resource; "miss" candidates
	// sort earlier (older deadlines) but are useless.
	useful := func(set []Candidate) (bool, error) {
		n := 0
		for _, c := range set {
			if c.Sig == "hit" {
				n++
			}
		}
		return n >= 2, nil
	}
	cands := []Candidate{
		{ID: "m1", Expires: t0.Add(1 * time.Minute), Client: "c", Sig: "miss"},
		{ID: "m2", Expires: t0.Add(2 * time.Minute), Client: "c", Sig: "miss"},
		{ID: "h1", Expires: t0.Add(3 * time.Minute), Client: "c", Sig: "hit"},
		{ID: "h2", Expires: t0.Add(4 * time.Minute), Client: "c", Sig: "hit"},
		{ID: "h3", Expires: t0.Add(5 * time.Minute), Client: "c", Sig: "hit"},
	}
	set, err := Select(cands, useful)
	if err != nil {
		t.Fatal(err)
	}
	if got := ids(set); got != "h1,h2" {
		t.Fatalf("victims = %s, want h1,h2 (misses pruned, oldest hits kept)", got)
	}
}

func TestSelectInfeasibleReturnsNil(t *testing.T) {
	set, err := Select([]Candidate{cand("a", 0, 1), cand("b", 0, 2)},
		func([]Candidate) (bool, error) { return false, nil })
	if err != nil || set != nil {
		t.Fatalf("Select = %v, %v; want nil, nil when no subset is feasible", set, err)
	}
	if set, err := Select(nil, qtyOracle(0)); err != nil || set != nil {
		t.Fatalf("Select(empty) = %v, %v; want nil, nil", set, err)
	}
}

func TestSelectPropagatesOracleError(t *testing.T) {
	boom := errors.New("trial plan failed")
	if _, err := Select([]Candidate{cand("a", 0, 1)},
		func([]Candidate) (bool, error) { return false, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the oracle's error", err)
	}
}

// Determinism across presentation order: any permutation of the same
// candidates yields the same victim set — the property the cross-engine
// equivalence suites lean on.
func TestSelectOrderIndependent(t *testing.T) {
	base := []Candidate{cand("a", 0, 4), cand("b", 1, 2), cand("c", 0, 9), cand("d", 0, 1)}
	want := ""
	for i := 0; i < len(base); i++ {
		perm := append(append([]Candidate(nil), base[i:]...), base[:i]...)
		set, err := Select(perm, qtyOracle(2))
		if err != nil {
			t.Fatal(err)
		}
		if want == "" {
			want = ids(set)
			continue
		}
		if got := ids(set); got != want {
			t.Fatalf("rotation %d: victims = %s, want %s", i, got, want)
		}
	}
	if want != "d,b" {
		t.Fatalf("canonical victims = %s, want d,b", want)
	}
}

// The oracle is never called with an empty set, and the call count stays
// linear in the candidate list (grow ≤ n, prune ≤ n).
func TestSelectOracleDiscipline(t *testing.T) {
	const n = 40
	cands := make([]Candidate, n)
	for i := range cands {
		cands[i] = cand(fmt.Sprintf("p%02d", i), 0, i+1)
	}
	calls := 0
	set, err := Select(cands, func(set []Candidate) (bool, error) {
		calls++
		if len(set) == 0 {
			t.Fatal("oracle called with empty set")
		}
		return len(set) >= n/2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != n/2 {
		t.Fatalf("victim count = %d, want %d", len(set), n/2)
	}
	if calls > 2*n {
		t.Fatalf("oracle called %d times for %d candidates; want O(n)", calls, n)
	}
}
