// Package preemption implements victim selection for priority-tiered,
// preemptible ("spot") promises. When the normal planner finds no feasible
// assignment for a request, the engine gathers the active promises the
// request is allowed to displace — strictly lower priority AND marked
// preemptible — and asks Select for a victim set whose revocation makes the
// request feasible.
//
// The selection contract, shared by every engine shape so the single-store,
// sharded and clustered engines displace the same holds for the same
// workload:
//
//   - Cost is the victim count, and the returned set is inclusion-minimal:
//     no victim can be dropped without losing feasibility. (Exact
//     count-minimality is subset-sum-hard in general; for the common case —
//     uniform holds on one pool, or single-slot property holders — the
//     greedy below is exactly count-minimal.)
//   - Ties break oldest-deadline-first: among candidates that serve equally,
//     the promise closest to lapsing anyway loses first.
//   - Selection is a pure function of the candidates' engine-independent
//     identity (deadline, client, predicate signature), never of engine-local
//     promise ids, so engines that shard the same world differently agree.
//
// The algorithm is oracle-driven: callers supply feasible, typically a trial
// run of their planner with the proposed victims treated as releases, and
// Select never mutates anything — the caller applies the final set through
// its normal revocation path.
package preemption

import (
	"sort"
	"time"
)

// Candidate is one active promise eligible for displacement, described by
// engine-independent identity. The caller has already applied the
// eligibility rule (Preemptible && Priority < request's Priority) and
// excluded the request's own release targets.
type Candidate struct {
	// ID is the engine-local promise id — opaque to selection (never
	// compared across engines), used only by the caller to apply the
	// result and as a last-resort total-order tie-break within one engine.
	ID string
	// Priority is the candidate's tier.
	Priority int
	// Expires is the candidate's deadline; oldest first loses first.
	Expires time.Time
	// Client owns the candidate.
	Client string
	// Sig is a stable signature of the candidate's predicates (canonical
	// source text), the engine-independent identity used to break
	// deadline/client ties deterministically.
	Sig string
}

// less is the canonical victim order: oldest deadline, then lowest
// priority (a tier-0 hold loses before a tier-3 hold with the same
// deadline), then client, signature and id for a total order.
func less(a, b Candidate) bool {
	if !a.Expires.Equal(b.Expires) {
		return a.Expires.Before(b.Expires)
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	if a.Client != b.Client {
		return a.Client < b.Client
	}
	if a.Sig != b.Sig {
		return a.Sig < b.Sig
	}
	return a.ID < b.ID
}

// Sort orders cands canonically in place.
func Sort(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool { return less(cands[i], cands[j]) })
}

// Select returns an inclusion-minimal victim set drawn from cands for which
// feasible reports true, or nil when no subset (up to the whole candidate
// list) restores feasibility. cands is reordered in place (canonically).
//
// Two passes, both deterministic:
//
//  1. Grow: candidates are taken in canonical order (oldest deadline first)
//     until the oracle accepts — the accepted prefix may contain candidates
//     that contribute nothing (they happened to sort early).
//  2. Prune: walk the accepted set newest-first, dropping every candidate
//     whose removal keeps the oracle satisfied. Newest-first removal keeps
//     the surviving victims skewed toward the oldest deadlines, matching
//     the tie-break rule, and yields an inclusion-minimal set.
//
// The oracle must be monotone (a superset of a feasible set is feasible),
// which holds for any "revoking more frees more" planner. Select calls it
// O(len(cands)) times and never with an empty set.
func Select(cands []Candidate, feasible func([]Candidate) (bool, error)) ([]Candidate, error) {
	if len(cands) == 0 {
		return nil, nil
	}
	Sort(cands)
	chosen := -1
	for k := 1; k <= len(cands); k++ {
		ok, err := feasible(cands[:k])
		if err != nil {
			return nil, err
		}
		if ok {
			chosen = k
			break
		}
	}
	if chosen < 0 {
		return nil, nil
	}
	set := append([]Candidate(nil), cands[:chosen]...)
	for i := len(set) - 1; i >= 0; i-- {
		if len(set) == 1 {
			break // the oracle rejected the empty prefix implicitly (k starts at 1)
		}
		trial := make([]Candidate, 0, len(set)-1)
		trial = append(trial, set[:i]...)
		trial = append(trial, set[i+1:]...)
		ok, err := feasible(trial)
		if err != nil {
			return nil, err
		}
		if ok {
			set = trial
		}
	}
	return set, nil
}
