package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value() = %d, want 5", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 3200 {
		t.Fatalf("Value() = %d, want 3200", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Summarize()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("empty histogram summary = %+v, want zero", s)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", s.P50)
	}
	if s.P90 != 90*time.Millisecond {
		t.Fatalf("P90 = %v, want 90ms", s.P90)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", s.P99)
	}
	wantMean := 50500 * time.Microsecond
	if s.Mean != wantMean {
		t.Fatalf("Mean = %v, want %v", s.Mean, wantMean)
	}
}

func TestHistogramSingle(t *testing.T) {
	var h Histogram
	h.Observe(7 * time.Millisecond)
	s := h.Summarize()
	if s.P50 != 7*time.Millisecond || s.P99 != 7*time.Millisecond {
		t.Fatalf("single-sample summary wrong: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 800 {
		t.Fatalf("Count = %d, want 800", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if got := g.Value(); got != 0 {
		t.Fatalf("zero Gauge Value() = %v, want 0", got)
	}
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("Value() = %v, want 2.5", got)
	}
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Fatalf("Value() = %v, want 0.25", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.Set(float64(i))
		}(i)
	}
	wg.Wait()
	if v := g.Value(); v < 0 || v > 15 {
		t.Fatalf("Value() = %v, want one of the written values", v)
	}
}

func TestSummarizeDurationsMergesExactly(t *testing.T) {
	// Two histograms whose union percentiles differ from both per-histogram
	// summaries — the case the old worst-shard merge got wrong.
	var a, b Histogram
	for i := 1; i <= 50; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 51; i <= 100; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	s := SummarizeDurations(append(a.Samples(), b.Samples()...))
	if s.Count != 100 {
		t.Fatalf("Count = %d, want 100", s.Count)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("merged P50 = %v, want 50ms", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("merged P99 = %v, want 99ms", s.P99)
	}
	if s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("merged min/max = %v/%v", s.Min, s.Max)
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1, 0); got != "n/a" {
		t.Fatalf("Rate(1,0) = %q", got)
	}
	if got := Rate(1, 2); got != "50.0%" {
		t.Fatalf("Rate(1,2) = %q", got)
	}
	if got := Rate(0, 5); got != "0.0%" {
		t.Fatalf("Rate(0,5) = %q", got)
	}
}

func TestSummaryString(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	if s := h.Summarize().String(); s == "" {
		t.Fatal("String() empty")
	}
}

func TestHistogramReservoirBoundsMemory(t *testing.T) {
	h := &Histogram{Cap: 64}
	for i := 0; i < 100_000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := len(h.Samples()); got != 64 {
		t.Fatalf("reservoir size = %d, want 64", got)
	}
	if h.Count() != 100_000 {
		t.Fatalf("Count = %d, want 100000 (total observations, not occupancy)", h.Count())
	}
	// The reservoir is a uniform sample: its median of a uniform ramp must
	// land near the true median, far from either extreme.
	s := h.Summarize()
	mid := 50 * time.Millisecond
	if s.P50 < mid/4 || s.P50 > mid*7/4 {
		t.Fatalf("reservoir p50 = %v wildly off true median %v", s.P50, mid)
	}
}

func TestHistogramExactBelowCapacity(t *testing.T) {
	// Until the reservoir fills, percentiles are exact — nothing is dropped
	// or replaced.
	h := &Histogram{Cap: 1000}
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Summarize()
	if s.Count != 100 || s.Min != time.Millisecond || s.Max != 100*time.Millisecond {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms exactly", s.P50)
	}
}

func TestHistogramZeroValueDefaultCap(t *testing.T) {
	var h Histogram
	for i := 0; i < DefaultReservoirSize+500; i++ {
		h.Observe(time.Millisecond)
	}
	if got := len(h.Samples()); got != DefaultReservoirSize {
		t.Fatalf("zero-value reservoir size = %d, want %d", got, DefaultReservoirSize)
	}
}
