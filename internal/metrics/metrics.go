// Package metrics provides the lightweight counters and latency histograms
// used by the benchmark harness (cmd/promise-bench) and by integration tests
// to report the experiment rows recorded in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (delta may be negative only in tests; production callers
// should treat Counter as monotonic).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable point-in-time value safe for concurrent use, for
// quantities that go up and down (shard imbalance, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultReservoirSize bounds a zero-value Histogram's sample memory. 4096
// samples keep the p99 of a steady workload within a fraction of a percent
// of exact while capping a Stats scrape at one fixed-size copy+sort.
const DefaultReservoirSize = 4096

// Histogram records durations and reports percentile summaries. It keeps a
// fixed-size uniform reservoir (Vitter's Algorithm R): the first Cap
// observations are stored exactly, after which each new observation replaces
// a random resident with probability Cap/seen. Percentiles are exact until
// the reservoir fills and statistically representative afterwards, so a
// long-lived daemon's scrape cost stays O(Cap) no matter how many requests
// it has served. The zero value is ready to use with DefaultReservoirSize.
type Histogram struct {
	// Cap is the reservoir capacity. Zero means DefaultReservoirSize. Set
	// it before the first Observe; it must not change afterwards.
	Cap int

	mu      sync.Mutex
	seen    int64
	rng     *rand.Rand
	samples []time.Duration
}

func (h *Histogram) cap() int {
	if h.Cap > 0 {
		return h.Cap
	}
	return DefaultReservoirSize
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.seen++
	if len(h.samples) < h.cap() {
		h.samples = append(h.samples, d)
		h.mu.Unlock()
		return
	}
	if h.rng == nil {
		// Seeded from the sample count so replacement is deterministic per
		// histogram history; the distributional guarantee does not depend on
		// seed quality.
		h.rng = rand.New(rand.NewSource(h.seen))
	}
	if j := h.rng.Int63n(h.seen); j < int64(len(h.samples)) {
		h.samples[j] = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations (not the reservoir occupancy).
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.seen)
}

// Samples returns a copy of the retained reservoir samples, so callers can
// merge several histograms into one summary (see SummarizeDurations) —
// percentiles of a union cannot be recovered from per-histogram summaries.
// The copy is at most Cap long regardless of how much was observed.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Summary holds a percentile summary of a Histogram. Percentiles are exact
// while the reservoir has not filled and reservoir-sampled afterwards;
// Count is always the true number of observations, never the (bounded)
// number of retained samples.
type Summary struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
}

// Summarize computes a Summary. An empty histogram yields a zero Summary.
func (h *Histogram) Summarize() Summary {
	s := SummarizeDurations(h.Samples())
	s.Count = h.Count()
	return s
}

// SummarizeDurations computes a Summary over raw samples, which it sorts in
// place; Count is len(samples). Callers merging bounded reservoirs should
// overwrite Count with the true observation total (see Histogram.Summarize)
// — and note that concatenating reservoirs weights each histogram by its
// retained samples, not its traffic. Empty input yields a zero Summary.
func SummarizeDurations(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pick := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return Summary{
		Count: len(samples),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		Mean:  total / time.Duration(len(samples)),
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
	}
}

// String renders the summary as a single row, e.g. for experiment output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Rate is a convenience: successes/total as a percentage string, guarding
// the zero-total case.
func Rate(success, total int64) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(success)/float64(total))
}
