// Package metrics provides the lightweight counters and latency histograms
// used by the benchmark harness (cmd/promise-bench) and by integration tests
// to report the experiment rows recorded in EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (delta may be negative only in tests; production callers
// should treat Counter as monotonic).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a settable point-in-time value safe for concurrent use, for
// quantities that go up and down (shard imbalance, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the current value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last value set (zero before any Set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records durations and reports percentile summaries. It stores
// raw samples; experiments record at most a few million observations so the
// memory cost is acceptable and the percentiles are exact.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	h.samples = append(h.samples, d)
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Samples returns a copy of the raw observations, so callers can merge
// several histograms into one exact summary (see SummarizeDurations) —
// percentiles of a union cannot be recovered from per-histogram summaries.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Summary holds an exact percentile summary of a Histogram.
type Summary struct {
	Count          int
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
}

// Summarize computes a Summary. An empty histogram yields a zero Summary.
func (h *Histogram) Summarize() Summary {
	return SummarizeDurations(h.Samples())
}

// SummarizeDurations computes an exact Summary over raw samples, which it
// sorts in place. Empty input yields a zero Summary.
func SummarizeDurations(samples []time.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var total time.Duration
	for _, s := range samples {
		total += s
	}
	pick := func(q float64) time.Duration {
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return Summary{
		Count: len(samples),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		Mean:  total / time.Duration(len(samples)),
		P50:   pick(0.50),
		P90:   pick(0.90),
		P99:   pick(0.99),
	}
}

// String renders the summary as a single row, e.g. for experiment output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%v p50=%v p90=%v p99=%v max=%v mean=%v",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}

// Rate is a convenience: successes/total as a percentage string, guarding
// the zero-total case.
func Rate(success, total int64) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(success)/float64(total))
}
