// Package workflow is a small event-driven engine for long-running business
// processes — the substitute for the authors' GAT workflow engine [5],
// which the paper names as the intended host for promise interactions
// ("In future work, we will implement support for Promise interactions in
// several service-provision frameworks, including our own GAT engine").
//
// A process is a set of named steps. Each step runs application code (which
// may call a promise manager) and returns a Transition: go to another step,
// wait for an external event, or finish. Waiting models the long-running
// quality that motivates promises — the process holds promises, not locks,
// across its waits (§1, §7).
package workflow

import (
	"errors"
	"fmt"
)

// Status is the lifecycle state of a process instance.
type Status int

// Instance statuses.
const (
	// Ready instances have not started.
	Ready Status = iota
	// Waiting instances are parked on an external event.
	Waiting
	// Completed instances finished successfully.
	Completed
	// Failed instances stopped with an error.
	Failed
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Ready:
		return "ready"
	case Waiting:
		return "waiting"
	case Completed:
		return "completed"
	case Failed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Context carries process-scoped state between steps.
type Context struct {
	// Vars is the process variable bag.
	Vars map[string]any
	// Event holds the payload of the most recently delivered event.
	Event any
}

// Transition tells the engine what to do after a step.
type Transition struct {
	next  string
	await string
	done  bool
}

// Goto continues at the named step.
func Goto(step string) Transition { return Transition{next: step} }

// WaitFor parks the instance until event is delivered, then continues at
// the named step.
func WaitFor(event, then string) Transition { return Transition{await: event, next: then} }

// Done completes the process.
func Done() Transition { return Transition{done: true} }

// StepFunc is one step of a process.
type StepFunc func(*Context) (Transition, error)

// Definition is a reusable process definition.
type Definition struct {
	// Name identifies the process type.
	Name string
	// Start is the first step.
	Start string
	// Steps maps step names to their functions.
	Steps map[string]StepFunc
	// MaxSteps guards against accidental infinite loops; zero means 10000.
	MaxSteps int
}

// Errors reported by the engine.
var (
	// ErrUnknownStep is returned when a transition names a missing step.
	ErrUnknownStep = errors.New("workflow: unknown step")
	// ErrNotWaiting is returned by Deliver on an instance that is not
	// parked, or parked on a different event.
	ErrNotWaiting = errors.New("workflow: instance not waiting for this event")
	// ErrFinished is returned when driving a completed or failed instance.
	ErrFinished = errors.New("workflow: instance already finished")
	// ErrTooManySteps is returned when MaxSteps is exceeded.
	ErrTooManySteps = errors.New("workflow: step budget exceeded")
)

// Instance is one running process.
type Instance struct {
	def     *Definition
	ctx     *Context
	status  Status
	current string // step to run next (after event delivery when waiting)
	waitFor string
	trace   []string
	failure error
	steps   int
}

// NewInstance creates an instance of def.
func NewInstance(def *Definition) (*Instance, error) {
	if def.Start == "" {
		return nil, errors.New("workflow: definition has no start step")
	}
	if _, ok := def.Steps[def.Start]; !ok {
		return nil, fmt.Errorf("%w: start step %q", ErrUnknownStep, def.Start)
	}
	return &Instance{
		def:     def,
		ctx:     &Context{Vars: make(map[string]any)},
		current: def.Start,
	}, nil
}

// Status reports the instance state.
func (i *Instance) Status() Status { return i.status }

// Trace returns the executed step names in order.
func (i *Instance) Trace() []string { return append([]string(nil), i.trace...) }

// Failure returns the error that failed the instance, if any.
func (i *Instance) Failure() error { return i.failure }

// Vars exposes the process variable bag.
func (i *Instance) Vars() map[string]any { return i.ctx.Vars }

// WaitingFor names the awaited event, or "".
func (i *Instance) WaitingFor() string {
	if i.status == Waiting {
		return i.waitFor
	}
	return ""
}

// Run drives the instance until it waits, completes or fails.
func (i *Instance) Run() error {
	switch i.status {
	case Completed, Failed:
		return ErrFinished
	case Waiting:
		return fmt.Errorf("%w: waiting for %q", ErrNotWaiting, i.waitFor)
	}
	return i.drive()
}

// Deliver hands an external event (with payload) to a waiting instance and
// resumes it.
func (i *Instance) Deliver(event string, payload any) error {
	if i.status != Waiting || i.waitFor != event {
		return fmt.Errorf("%w: status=%v waiting=%q delivered=%q", ErrNotWaiting, i.status, i.waitFor, event)
	}
	i.status = Ready
	i.waitFor = ""
	i.ctx.Event = payload
	return i.drive()
}

func (i *Instance) drive() error {
	max := i.def.MaxSteps
	if max <= 0 {
		max = 10000
	}
	for {
		step, ok := i.def.Steps[i.current]
		if !ok {
			i.status = Failed
			i.failure = fmt.Errorf("%w: %q", ErrUnknownStep, i.current)
			return i.failure
		}
		i.steps++
		if i.steps > max {
			i.status = Failed
			i.failure = fmt.Errorf("%w: %d", ErrTooManySteps, max)
			return i.failure
		}
		i.trace = append(i.trace, i.current)
		tr, err := step(i.ctx)
		if err != nil {
			i.status = Failed
			i.failure = fmt.Errorf("workflow: step %q: %w", i.current, err)
			return i.failure
		}
		switch {
		case tr.done:
			i.status = Completed
			return nil
		case tr.await != "":
			if _, ok := i.def.Steps[tr.next]; !ok {
				i.status = Failed
				i.failure = fmt.Errorf("%w: %q (after event %q)", ErrUnknownStep, tr.next, tr.await)
				return i.failure
			}
			i.status = Waiting
			i.waitFor = tr.await
			i.current = tr.next
			return nil
		default:
			i.current = tr.next
		}
	}
}
