package workflow

import (
	"errors"
	"fmt"
	"testing"
)

func linearDef() *Definition {
	return &Definition{
		Name:  "linear",
		Start: "a",
		Steps: map[string]StepFunc{
			"a": func(c *Context) (Transition, error) {
				c.Vars["a"] = true
				return Goto("b"), nil
			},
			"b": func(c *Context) (Transition, error) {
				c.Vars["b"] = true
				return Done(), nil
			},
		},
	}
}

func TestLinearProcess(t *testing.T) {
	in, err := NewInstance(linearDef())
	if err != nil {
		t.Fatal(err)
	}
	if in.Status() != Ready {
		t.Fatalf("status = %v", in.Status())
	}
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Status() != Completed {
		t.Fatalf("status = %v", in.Status())
	}
	if fmt.Sprint(in.Trace()) != "[a b]" {
		t.Fatalf("trace = %v", in.Trace())
	}
	if in.Vars()["a"] != true || in.Vars()["b"] != true {
		t.Fatal("vars not set")
	}
	if err := in.Run(); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-run: %v", err)
	}
}

func TestWaitAndDeliver(t *testing.T) {
	def := &Definition{
		Name:  "order",
		Start: "reserve",
		Steps: map[string]StepFunc{
			"reserve": func(c *Context) (Transition, error) {
				return WaitFor("payment", "ship"), nil
			},
			"ship": func(c *Context) (Transition, error) {
				c.Vars["paid"] = c.Event
				return Done(), nil
			},
		},
	}
	in, _ := NewInstance(def)
	if err := in.Run(); err != nil {
		t.Fatal(err)
	}
	if in.Status() != Waiting || in.WaitingFor() != "payment" {
		t.Fatalf("status=%v waiting=%q", in.Status(), in.WaitingFor())
	}
	// Wrong event rejected.
	if err := in.Deliver("cancellation", nil); !errors.Is(err, ErrNotWaiting) {
		t.Fatalf("wrong event: %v", err)
	}
	// Run while waiting rejected.
	if err := in.Run(); !errors.Is(err, ErrNotWaiting) {
		t.Fatalf("run while waiting: %v", err)
	}
	if err := in.Deliver("payment", 250); err != nil {
		t.Fatal(err)
	}
	if in.Status() != Completed || in.Vars()["paid"] != 250 {
		t.Fatalf("status=%v paid=%v", in.Status(), in.Vars()["paid"])
	}
	if in.WaitingFor() != "" {
		t.Fatal("WaitingFor after completion")
	}
}

func TestStepFailure(t *testing.T) {
	def := &Definition{
		Name:  "f",
		Start: "boom",
		Steps: map[string]StepFunc{
			"boom": func(c *Context) (Transition, error) {
				return Transition{}, errors.New("kaput")
			},
		},
	}
	in, _ := NewInstance(def)
	if err := in.Run(); err == nil {
		t.Fatal("want error")
	}
	if in.Status() != Failed || in.Failure() == nil {
		t.Fatalf("status=%v failure=%v", in.Status(), in.Failure())
	}
	if err := in.Deliver("x", nil); !errors.Is(err, ErrNotWaiting) {
		t.Fatalf("deliver to failed: %v", err)
	}
}

func TestUnknownStepTransitions(t *testing.T) {
	def := &Definition{
		Name:  "u",
		Start: "a",
		Steps: map[string]StepFunc{
			"a": func(c *Context) (Transition, error) { return Goto("ghost"), nil },
		},
	}
	in, _ := NewInstance(def)
	if err := in.Run(); !errors.Is(err, ErrUnknownStep) {
		t.Fatalf("goto ghost: %v", err)
	}
	def2 := &Definition{
		Name:  "u2",
		Start: "a",
		Steps: map[string]StepFunc{
			"a": func(c *Context) (Transition, error) { return WaitFor("e", "ghost"), nil },
		},
	}
	in2, _ := NewInstance(def2)
	if err := in2.Run(); !errors.Is(err, ErrUnknownStep) {
		t.Fatalf("wait-then-ghost: %v", err)
	}
}

func TestDefinitionValidation(t *testing.T) {
	if _, err := NewInstance(&Definition{Name: "x"}); err == nil {
		t.Fatal("no start accepted")
	}
	if _, err := NewInstance(&Definition{Name: "x", Start: "a"}); !errors.Is(err, ErrUnknownStep) {
		t.Fatalf("missing start step: %v", err)
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	def := &Definition{
		Name:     "spin",
		Start:    "a",
		MaxSteps: 50,
		Steps: map[string]StepFunc{
			"a": func(c *Context) (Transition, error) { return Goto("a"), nil },
		},
	}
	in, _ := NewInstance(def)
	if err := in.Run(); !errors.Is(err, ErrTooManySteps) {
		t.Fatalf("loop guard: %v", err)
	}
}

func TestBranching(t *testing.T) {
	def := &Definition{
		Name:  "branch",
		Start: "decide",
		Steps: map[string]StepFunc{
			"decide": func(c *Context) (Transition, error) {
				if c.Vars["in-stock"] == true {
					return Goto("ship"), nil
				}
				return Goto("backorder"), nil
			},
			"ship":      func(c *Context) (Transition, error) { c.Vars["path"] = "ship"; return Done(), nil },
			"backorder": func(c *Context) (Transition, error) { c.Vars["path"] = "backorder"; return Done(), nil },
		},
	}
	in, _ := NewInstance(def)
	in.Vars()["in-stock"] = true
	_ = in.Run()
	if in.Vars()["path"] != "ship" {
		t.Fatalf("path = %v", in.Vars()["path"])
	}
	in2, _ := NewInstance(def)
	_ = in2.Run()
	if in2.Vars()["path"] != "backorder" {
		t.Fatalf("path = %v", in2.Vars()["path"])
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Ready: "ready", Waiting: "waiting", Completed: "completed", Failed: "failed",
	} {
		if s.String() != want {
			t.Errorf("%v", s)
		}
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status string empty")
	}
}
