package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
)

// CompositePrefix marks a cluster-composite promise id: a multi-node grant
// is identified as "cx!<part>+<part>+…", self-describing so any engine
// instance (or a fresh one) can expand it without shared directory state —
// the part ids carry their home-node namespace ("n0!prm…").
const CompositePrefix = "cx!"

// reasonJointUnsat is the rejection reason a matching-mode engine emits
// when floating predicates cannot be satisfied together with the
// outstanding promises. It must match core's wording exactly: the engine
// recognises it in a node's direct-path rejection as the signal to retry
// the grant through the federated path, where every node's candidates are
// in scope.
const reasonJointUnsat = "property predicates not jointly satisfiable with outstanding promises"

// Config configures a cluster Engine.
type Config struct {
	// Ports are the member nodes. Ids must be unique; they double as the
	// nodes' promise-id namespaces.
	Ports []NodePort
	// VNodes is the consistent-hash virtual-node count (0 = DefaultVNodes).
	VNodes int
	// Clock drives staleness decisions; nil means the system clock.
	Clock clock.Clock
	// Mode must mirror the member nodes' property mode.
	Mode core.PropertyMode
	// ReserveTTL bounds federated sessions server-side (0 = node default).
	ReserveTTL time.Duration
	// ReconcileEvery, when positive, runs Reconcile on that cadence in the
	// background (clock-alarm driven, so a Fake clock advances it
	// deterministically), retrying queued compensations without an
	// operator in the loop. Zero leaves Reconcile manual. Requires a Clock
	// that implements clock.Alarmer (System and Fake both do).
	ReconcileEvery time.Duration
	// Breaker, when non-nil, wraps every port in a per-node circuit
	// breaker (see BreakerPort): consecutive transport failures open the
	// circuit and calls to that node fail fast with ErrNodeUnavailable
	// until a cooldown probe succeeds. Ports already wrapped in a
	// BreakerPort are reused, so an Engine and a Coordinator handed the
	// same wrapped ports share one breaker per node.
	Breaker *BreakerConfig
}

// Engine federates the member nodes into one promises.Engine. Single-node
// traffic — the overwhelmingly common case, by construction of the ring —
// is forwarded to the owning node in one round trip, bypassing every other
// node and the coordinator. Grants that span nodes (multi-pool composites,
// property predicates) run the two-phase reserve/confirm path with a
// cluster-level joint property match between the phases.
type Engine struct {
	ring  *Ring
	order []string
	ports map[string]NodePort
	clk   clock.Clock
	mode  core.PropertyMode
	ttl   time.Duration

	watchMu  sync.Mutex
	watchSeq atomic.Uint64

	reconcileEvery time.Duration

	mu            sync.Mutex
	pending       []pendingRelease
	closed        bool
	reconcileStop func()
}

// pendingRelease is a compensation that could not be delivered (its node
// was unreachable when a partial confirm failure was being unwound).
// Reconcile retries these; until it succeeds the node may hold parts of a
// grant the caller was told failed.
type pendingRelease struct {
	node   string
	client string
	ids    []string
}

// New builds an Engine over the given member ports.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Ports) == 0 {
		return nil, fmt.Errorf("cluster: engine needs at least one node port")
	}
	ports := make(map[string]NodePort, len(cfg.Ports))
	ids := make([]string, 0, len(cfg.Ports))
	for _, p := range cfg.Ports {
		id := p.ID()
		if _, dup := ports[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", id)
		}
		ports[id] = p
		ids = append(ids, id)
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	if cfg.Breaker != nil {
		wrapBreakers(ports, *cfg.Breaker, clk)
	}
	e := &Engine{
		ring:           ring,
		order:          ring.Members(),
		ports:          ports,
		clk:            clk,
		mode:           cfg.Mode,
		ttl:            cfg.ReserveTTL,
		reconcileEvery: cfg.ReconcileEvery,
	}
	if e.reconcileEvery > 0 {
		if _, ok := clk.(clock.Alarmer); !ok {
			return nil, fmt.Errorf("cluster: ReconcileEvery needs a clock implementing clock.Alarmer")
		}
		e.scheduleReconcile()
	}
	return e, nil
}

// scheduleReconcile arms the next background Reconcile alarm. Each firing
// retries the pending compensation queue and re-arms, so the loop runs at
// the configured cadence until Close; manual Reconcile calls stay valid in
// between (the queue is shared and both paths drain it idempotently).
func (e *Engine) scheduleReconcile() {
	al := e.clk.(clock.Alarmer)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.reconcileStop = al.AfterFunc(e.clk.Now().Add(e.reconcileEvery), func() {
		_ = e.Reconcile(context.Background())
		e.scheduleReconcile()
	})
}

// Ring exposes the ownership ring (tools and tests).
func (e *Engine) Ring() *Ring { return e.ring }

// BreakerStates snapshots each node's circuit state. Empty when the
// engine was built without breakers.
func (e *Engine) BreakerStates() map[string]BreakerState {
	return breakerStates(e.ports)
}

// isComposite reports a cluster-composite id.
func isComposite(id string) bool { return strings.HasPrefix(id, CompositePrefix) }

// compositeParts expands a cluster-composite id.
func compositeParts(id string) []string {
	return strings.Split(strings.TrimPrefix(id, CompositePrefix), "+")
}

// ownerNode maps a promise id to its minting node via the id namespace.
// Migrated promises answer not-found there; callers fall back to a
// broadcast (the destination node's moved directory routes the id).
func (e *Engine) ownerNode(id string) (string, bool) {
	i := strings.IndexByte(id, '!')
	if i <= 0 {
		return "", false
	}
	_, ok := e.ports[id[:i]]
	return id[:i], ok
}

// scanPromiseRequest reports the nodes a request's fixed predicates and
// release targets live on, and whether it carries property predicates.
func (e *Engine) scanPromiseRequest(pr core.PromiseRequest) (map[string]bool, bool) {
	nodes := make(map[string]bool)
	hasProps := false
	for _, p := range pr.Predicates {
		switch p.View {
		case core.AnonymousView:
			nodes[e.ring.Owner(p.Pool)] = true
		case core.NamedView:
			nodes[e.ring.Owner(p.Instance)] = true
		case core.PropertyView:
			hasProps = true
		}
	}
	for _, rid := range pr.Releases {
		for _, part := range e.releaseTargets(rid) {
			if n, ok := e.ownerNode(part); ok {
				nodes[n] = true
			}
		}
	}
	return nodes, hasProps
}

// releaseTargets expands a release id into its node-level part ids.
func (e *Engine) releaseTargets(id string) []string {
	if isComposite(id) {
		return compositeParts(id)
	}
	return []string{id}
}

// Execute implements promises.Engine. Messages whose resources live on one
// node forward unchanged — one round trip, no coordinator. Messages that
// span nodes are supported for pure promise-request envelopes (each
// request grants through the federated path); cross-node envelopes mixing
// environments or actions are rejected, because their §6 atomicity cannot
// be preserved across node boundaries.
func (e *Engine) Execute(ctx context.Context, req core.Request) (*core.Response, error) {
	if req.Action != nil {
		return nil, fmt.Errorf("%w: cluster: function actions cannot cross node boundaries; use Request.ActionName", core.ErrBadRequest)
	}
	nodes := make(map[string]bool)
	hasProps := false
	for _, pr := range req.PromiseRequests {
		n, p := e.scanPromiseRequest(pr)
		for id := range n {
			nodes[id] = true
		}
		hasProps = hasProps || p
	}
	for _, env := range req.Env {
		for _, part := range e.releaseTargets(env.PromiseID) {
			if n, ok := e.ownerNode(part); ok {
				nodes[n] = true
			}
		}
	}
	for _, res := range append(append([]string(nil), req.Resources...), actionResources(req.ActionParams)...) {
		nodes[e.ring.Owner(res)] = true
	}

	if !hasProps && len(nodes) <= 1 {
		node := e.order[0]
		for n := range nodes {
			node = n
		}
		resp, err := e.ports[node].Execute(ctx, req)
		if err != nil {
			return nil, err
		}
		// A matching-mode node that rejected for joint unsatisfiability
		// only searched its own candidates; retry those requests with the
		// whole cluster in scope. Only pure grant envelopes retry — the
		// message's releases and action have already been applied.
		if e.mode == core.MatchingMode && len(req.Env) == 0 && req.ActionName == "" {
			for i := range resp.Promises {
				if !resp.Promises[i].Accepted && resp.Promises[i].Reason == reasonJointUnsat && i < len(req.PromiseRequests) {
					fed, err := e.grantFed(ctx, req.Client, req.PromiseRequests[i])
					if err == nil {
						resp.Promises[i] = fed
					}
				}
			}
		}
		return resp, nil
	}

	if len(req.Env) > 0 || req.ActionName != "" {
		return nil, fmt.Errorf("%w: cluster: message touches multiple nodes; cross-node envelopes support promise requests only", core.ErrBadRequest)
	}
	out := &core.Response{}
	for _, pr := range req.PromiseRequests {
		resp, err := e.grantOne(ctx, req.Client, pr)
		if err != nil {
			return nil, err
		}
		out.Promises = append(out.Promises, resp)
	}
	return out, nil
}

func actionResources(params map[string]string) []string {
	var out []string
	if p := params["pool"]; p != "" {
		out = append(out, p)
	}
	if p := params["instance"]; p != "" {
		out = append(out, p)
	}
	return out
}

// GrantBatch implements promises.Engine: each request grants individually
// through the cheapest path it qualifies for.
func (e *Engine) GrantBatch(ctx context.Context, client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error) {
	out := make([]core.PromiseResponse, 0, len(reqs))
	for _, pr := range reqs {
		resp, err := e.grantOne(ctx, client, pr)
		if err != nil {
			return nil, err
		}
		out = append(out, resp)
	}
	return out, nil
}

// grantOne routes one promise request: direct to the owning node when the
// request's resources live on one node and no predicate floats; otherwise
// the federated two-phase path.
func (e *Engine) grantOne(ctx context.Context, client string, pr core.PromiseRequest) (core.PromiseResponse, error) {
	nodes, hasProps := e.scanPromiseRequest(pr)
	if !hasProps && len(nodes) <= 1 {
		node := e.order[0]
		for n := range nodes {
			node = n
		}
		resps, err := e.ports[node].GrantBatch(ctx, client, []core.PromiseRequest{pr})
		if err != nil {
			return core.PromiseResponse{}, err
		}
		if len(resps) != 1 {
			return core.PromiseResponse{}, fmt.Errorf("cluster: node %s returned %d responses, want 1", node, len(resps))
		}
		resp := resps[0]
		if !resp.Accepted && resp.Reason == reasonJointUnsat && e.mode == core.MatchingMode {
			return e.grantFed(ctx, client, pr)
		}
		return resp, nil
	}
	return e.grantFed(ctx, client, pr)
}

// fedAttempt is one reserve→match→confirm try; grantFed drives its retry
// discipline (widen after a pruned match failure, re-locate after a stale
// release-target mapping).
type fedAttempt struct {
	widened bool
	loc     map[string]string // release part id -> node override
}

// grantFed grants one request through the federated two-phase path.
func (e *Engine) grantFed(ctx context.Context, client string, pr core.PromiseRequest) (core.PromiseResponse, error) {
	at := &fedAttempt{loc: make(map[string]string)}
	for attempt := 0; attempt < 4; attempt++ {
		resp, retry, err := e.tryFed(ctx, client, pr, at)
		if err != nil {
			return core.PromiseResponse{}, err
		}
		if !retry {
			return resp, nil
		}
	}
	return core.PromiseResponse{
		Correlation: pr.RequestID,
		Reason:      "cluster: federated grant did not converge",
	}, nil
}

// tryFed runs one federated attempt. retry=true means the attempt aborted
// cleanly and at was adjusted (widened scope or corrected locations) for
// another try.
func (e *Engine) tryFed(ctx context.Context, client string, pr core.PromiseRequest, at *fedAttempt) (core.PromiseResponse, bool, error) {
	reject := func(format string, args ...any) core.PromiseResponse {
		return core.PromiseResponse{Correlation: pr.RequestID, Reason: fmt.Sprintf(format, args...)}
	}

	// Route release targets by id namespace, overridden by anything the
	// locate pass discovered (migrated promises).
	relByNode := make(map[string][]string)
	for _, rid := range pr.Releases {
		for _, part := range e.releaseTargets(rid) {
			node, ok := at.loc[part], true
			if node == "" {
				node, ok = e.ownerNode(part)
			}
			if !ok {
				if node, ok = e.locate(ctx, client, part); !ok {
					return reject("release target %s: %v", rid, fmt.Errorf("%w: %s", core.ErrPromiseNotFound, part)), false, nil
				}
				at.loc[part] = node
			}
			relByNode[node] = append(relByNode[node], part)
		}
	}

	// Partition predicates: fixed ones to their ring owners, property ones
	// float — they travel to every involved node to scope its pre-filter
	// and exported context.
	fixedByNode := make(map[string][]int)
	var propIdx []int
	for i, p := range pr.Predicates {
		switch p.View {
		case core.AnonymousView:
			n := e.ring.Owner(p.Pool)
			fixedByNode[n] = append(fixedByNode[n], i)
		case core.NamedView:
			n := e.ring.Owner(p.Instance)
			fixedByNode[n] = append(fixedByNode[n], i)
		case core.PropertyView:
			propIdx = append(propIdx, i)
		}
	}

	involved := make(map[string]bool)
	for n := range relByNode {
		involved[n] = true
	}
	for n := range fixedByNode {
		involved[n] = true
	}
	pruned := false
	if len(propIdx) > 0 {
		if at.widened {
			for _, n := range e.order {
				involved[n] = true
			}
		} else {
			// Cluster-level pre-filter: skip nodes whose summary proves
			// they cannot contribute — no slots to rearrange, and either
			// nothing hostable or nothing the predicates' indexed values
			// could match. A stale or unreadable summary keeps the node in.
			now := e.clk.Now()
			for _, n := range e.order {
				if involved[n] {
					continue
				}
				sum, err := e.ports[n].FedSummary(ctx)
				if err != nil || sum.Stale(now) || sum.Slots > 0 {
					involved[n] = true
					continue
				}
				may := false
				for _, i := range propIdx {
					if sum.Hostable > 0 && sum.MayHost(pr.Predicates[i].Expr) {
						may = true
						break
					}
				}
				if may {
					involved[n] = true
				} else {
					pruned = true
				}
			}
		}
	}
	if len(involved) == 0 {
		involved[e.order[0]] = true
	}
	nodeOrder := sortedNodes(involved)

	// Phase 1: reserve ascending by node id — the node-level lock order
	// that keeps concurrent federated grants deadlock-free (each node's
	// TTL is the backstop for a caller that dies mid-pipeline).
	sessions := make(map[string]string)
	ctxs := make([]nodeContext, 0, len(nodeOrder))
	grantedByNode := make(map[string][]core.GrantedPart)
	var floating []floatRef
	for _, i := range propIdx {
		floating = append(floating, floatRef{idx: i})
	}
	abortAll := func() {
		for n, sid := range sessions {
			_ = e.ports[n].FedAbort(context.WithoutCancel(ctx), sid)
		}
	}
	for _, n := range nodeOrder {
		idxs := fixedByNode[n]
		preds := make([]core.Predicate, 0, len(idxs)+len(propIdx))
		predIdx := make([]int, 0, len(idxs)+len(propIdx))
		for _, i := range idxs {
			preds = append(preds, pr.Predicates[i])
			predIdx = append(predIdx, i)
		}
		for _, i := range propIdx {
			preds = append(preds, pr.Predicates[i])
			predIdx = append(predIdx, i)
		}
		res, err := e.ports[n].FedReserve(ctx, client, core.FedReserveSpec{
			Releases:    relByNode[n],
			Predicates:  preds,
			PredIdx:     predIdx,
			WantProps:   len(propIdx) > 0,
			Duration:    pr.Duration,
			MinDuration: pr.MinDuration,
			TTL:         e.ttl,
			Priority:    pr.Priority,
			Preemptible: pr.Preemptible,
		})
		if err != nil {
			abortAll()
			return core.PromiseResponse{}, false, err
		}
		if res.Reject != nil {
			abortAll()
			// A not-found release target may simply have migrated since we
			// routed it; re-locate and retry once per target.
			if strings.HasPrefix(res.Reject.Reason, "release target ") {
				if e.relocate(ctx, client, relByNode[n], at) {
					return core.PromiseResponse{}, true, nil
				}
			}
			out := *res.Reject
			out.Correlation = pr.RequestID
			return out, false, nil
		}
		sessions[n] = res.SessionID
		grantedByNode[n] = res.Granted
		ctxs = append(ctxs, nodeContext{node: n, fc: res.Context})
		for _, d := range res.Deferred {
			floating = append(floating, floatRef{idx: d, named: true})
		}
	}

	// Phase 2: the cluster-level joint match, when anything floats.
	specs := make(map[string]*core.FedConfirmSpec)
	for _, n := range nodeOrder {
		specs[n] = &core.FedConfirmSpec{}
	}
	if len(floating) > 0 {
		plan, ok, err := solveClusterMatch(ctxs, pr.Predicates, floating, e.mode)
		if err != nil {
			abortAll()
			return core.PromiseResponse{}, false, err
		}
		if !ok {
			abortAll()
			if pruned && !at.widened {
				// The pruned node set could not satisfy the match; widen to
				// every node and retry — the cluster analogue of the
				// pre-filter widen-retry inside a sharded grant.
				at.widened = true
				return core.PromiseResponse{}, true, nil
			}
			return reject("%s", reasonJointUnsat), false, nil
		}
		for n, ras := range plan.realloc {
			specs[n].Realloc = ras
		}
		for _, mv := range plan.moves {
			pid, ok := slotPromiseID(mv.slot.Key)
			if !ok {
				abortAll()
				return core.PromiseResponse{}, false, fmt.Errorf("cluster: malformed slot key %q", mv.slot.Key)
			}
			specs[mv.from].MigrateOut = append(specs[mv.from].MigrateOut, pid)
			specs[mv.to].MigrateIn = append(specs[mv.to].MigrateIn, core.FedMigrateIn{
				ID:       pid,
				Client:   mv.slot.Client,
				Expr:     mv.slot.Expr,
				Expires:  mv.slot.Expires,
				Instance: mv.inst,
				FromNode: mv.from,
			})
		}
		for n, pins := range plan.pinned {
			specs[n].Pinned = pins
		}
	}

	// Phase 3: confirm — destinations strictly before sources, so a
	// failure between confirms can only duplicate a migrating slot, never
	// lose it; the compensation pass then releases the duplicates.
	confirmOrder := append([]string(nil), nodeOrder...)
	sort.SliceStable(confirmOrder, func(i, j int) bool {
		di, dj := len(specs[confirmOrder[i]].MigrateIn) > 0, len(specs[confirmOrder[j]].MigrateIn) > 0
		if di != dj {
			return di
		}
		return confirmOrder[i] < confirmOrder[j]
	})
	partsByNode := make(map[string][]core.GrantedPart)
	var confirmed []string
	for _, n := range confirmOrder {
		sid := sessions[n]
		parts, err := e.ports[n].FedConfirm(ctx, sid, *specs[n])
		delete(sessions, n)
		if err != nil {
			// Ambiguous: the node may have applied the confirm and lost
			// the reply. Abort is idempotent (a no-op on a finished
			// session), and the node's reserve-time part ids plus its
			// migrated-in ids go on the reconcile queue — Release treats
			// already-gone promises as settled, so remediation converges
			// to exactly-nothing-held whichever way the confirm landed.
			_ = e.ports[n].FedAbort(context.WithoutCancel(ctx), sid)
			e.queueAmbiguous(client, n, grantedByNode[n], specs[n])
			abortAll() // the sessions not yet confirmed
			e.compensate(client, confirmed, specs, partsByNode)
			return core.PromiseResponse{}, false, fmt.Errorf("cluster: confirm on node %s failed: %w", n, err)
		}
		confirmed = append(confirmed, n)
		partsByNode[n] = parts
	}

	var parts []core.GrantedPart
	for _, n := range nodeOrder {
		parts = append(parts, partsByNode[n]...)
	}
	if len(parts) == 0 {
		return reject("nothing granted"), false, nil
	}
	resp := core.PromiseResponse{
		Correlation: pr.RequestID,
		Accepted:    true,
		Expires:     parts[0].Expires,
	}
	if len(parts) == 1 {
		resp.PromiseID = parts[0].ID
	} else {
		ids := make([]string, len(parts))
		for i, p := range parts {
			ids[i] = p.ID
			if p.Expires.Before(resp.Expires) {
				resp.Expires = p.Expires
			}
		}
		resp.PromiseID = CompositePrefix + strings.Join(ids, "+")
	}
	return resp, false, nil
}

// relocate re-resolves the given release part ids by broadcast; reports
// whether any mapping changed (so the caller should retry).
func (e *Engine) relocate(ctx context.Context, client string, parts []string, at *fedAttempt) bool {
	changed := false
	for _, part := range parts {
		prev := at.loc[part]
		if prev == "" {
			prev, _ = e.ownerNode(part)
		}
		if node, ok := e.locate(ctx, client, part); ok && node != prev {
			at.loc[part] = node
			changed = true
		}
	}
	return changed
}

// locate finds the node currently answering for a promise id: its home
// node first, then a broadcast (a migrated slot answers at its
// destination through the moved directory).
func (e *Engine) locate(ctx context.Context, client, id string) (string, bool) {
	tryNode := func(n string) bool {
		verdicts, err := e.ports[n].CheckBatch(ctx, client, []string{id})
		return err == nil && len(verdicts) == 1 && !errors.Is(verdicts[0], core.ErrPromiseNotFound)
	}
	home, hasHome := e.ownerNode(id)
	if hasHome && tryNode(home) {
		return home, true
	}
	for _, n := range e.order {
		if hasHome && n == home {
			continue
		}
		if tryNode(n) {
			return n, true
		}
	}
	return "", false
}

// compensate unwinds the confirmed slice of a partially-failed federated
// grant: every part those nodes committed — granted parts (the request's
// client) and migrated-in duplicates (their own clients) — is released.
// Nodes unreachable right now are queued for Reconcile.
func (e *Engine) compensate(client string, confirmed []string, specs map[string]*core.FedConfirmSpec, partsByNode map[string][]core.GrantedPart) {
	for _, n := range confirmed {
		byClient := make(map[string][]string)
		for _, p := range partsByNode[n] {
			byClient[client] = append(byClient[client], p.ID)
		}
		for _, mi := range specs[n].MigrateIn {
			byClient[mi.Client] = append(byClient[mi.Client], mi.ID)
		}
		for cl, ids := range byClient {
			if err := e.ports[n].Release(context.Background(), cl, ids...); err != nil && !releaseSettled(err) {
				e.mu.Lock()
				e.pending = append(e.pending, pendingRelease{node: n, client: cl, ids: ids})
				e.mu.Unlock()
			}
		}
	}
}

// queueAmbiguous records the parts a node MAY hold after a confirm whose
// reply was lost: its reserve-time granted part ids and its migrated-in
// ids. Reconcile releases them; a confirm that never applied leaves
// nothing behind and the release settles as not-found.
func (e *Engine) queueAmbiguous(client, node string, granted []core.GrantedPart, spec *core.FedConfirmSpec) {
	byClient := make(map[string][]string)
	for _, g := range granted {
		byClient[client] = append(byClient[client], g.ID)
	}
	if spec != nil {
		for _, mi := range spec.MigrateIn {
			byClient[mi.Client] = append(byClient[mi.Client], mi.ID)
		}
	}
	e.mu.Lock()
	for cl, ids := range byClient {
		e.pending = append(e.pending, pendingRelease{node: node, client: cl, ids: ids})
	}
	e.mu.Unlock()
}

// releaseSettled reports an error that means the promise no longer holds
// anything — compensation has nothing left to do.
func releaseSettled(err error) bool {
	return errors.Is(err, core.ErrPromiseNotFound) ||
		errors.Is(err, core.ErrPromiseReleased) ||
		errors.Is(err, core.ErrPromiseExpired)
}

// Reconcile retries compensations that previously failed (their node was
// unreachable). Call it after a crashed node rejoins; the CheckBatch
// equivalence of a remediated cluster depends on it. Returns the first
// retry error; successfully settled entries leave the queue either way.
func (e *Engine) Reconcile(ctx context.Context) error {
	e.mu.Lock()
	pend := e.pending
	e.pending = nil
	e.mu.Unlock()
	var firstErr error
	var remaining []pendingRelease
	for _, p := range pend {
		err := e.ports[p.node].Release(ctx, p.client, p.ids...)
		if err != nil && !releaseSettled(err) {
			remaining = append(remaining, p)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	if len(remaining) > 0 {
		e.mu.Lock()
		e.pending = append(remaining, e.pending...)
		e.mu.Unlock()
	}
	return firstErr
}

// PendingCompensations reports how many failed-grant unwind entries await
// Reconcile.
func (e *Engine) PendingCompensations() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pending)
}

// CheckBatch implements promises.Engine. Plain ids check at their home
// node; cluster composites fan out to their parts; a not-found verdict
// falls back to a broadcast, because a migrated slot answers at its
// destination node.
func (e *Engine) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	out := make([]error, len(ids))
	type ref struct {
		pos  int // index into ids
		part string
	}
	perNode := make(map[string][]ref)
	verdicts := make(map[int]map[string]error) // pos -> part -> verdict
	var unrouted []ref
	for i, id := range ids {
		verdicts[i] = make(map[string]error)
		for _, part := range e.releaseTargets(id) {
			if n, ok := e.ownerNode(part); ok {
				perNode[n] = append(perNode[n], ref{pos: i, part: part})
			} else {
				unrouted = append(unrouted, ref{pos: i, part: part})
			}
		}
	}
	for _, n := range sortedNodes(nodeSet(perNode)) {
		refs := perNode[n]
		partIDs := make([]string, len(refs))
		for i, r := range refs {
			partIDs[i] = r.part
		}
		vs, err := e.ports[n].CheckBatch(ctx, client, partIDs)
		if err != nil {
			return nil, err
		}
		for i, r := range refs {
			verdicts[r.pos][r.part] = vs[i]
		}
	}
	// Broadcast pass: unrouted parts, and routed parts whose home node
	// answered not-found (migrated away).
	var retry []ref
	retry = append(retry, unrouted...)
	for pos, parts := range verdicts {
		for part, v := range parts {
			if v != nil && errors.Is(v, core.ErrPromiseNotFound) {
				retry = append(retry, ref{pos: pos, part: part})
			}
		}
	}
	for _, r := range retry {
		v := error(fmt.Errorf("%w: %s", core.ErrPromiseNotFound, r.part))
		home, _ := e.ownerNode(r.part)
		for _, n := range e.order {
			if n == home {
				continue
			}
			vs, err := e.ports[n].CheckBatch(ctx, client, []string{r.part})
			if err != nil || len(vs) != 1 {
				continue
			}
			if vs[0] == nil || !errors.Is(vs[0], core.ErrPromiseNotFound) {
				v = vs[0]
				break
			}
		}
		verdicts[r.pos][r.part] = v
	}
	for i, id := range ids {
		for _, part := range e.releaseTargets(id) {
			if v := verdicts[i][part]; v != nil {
				out[i] = v
				break
			}
		}
	}
	return out, nil
}

// Release implements promises.Engine. Composite parts release at their
// nodes; a not-found group degrades to per-id broadcast location. Release
// is atomic per node; a cross-node composite that fails partway returns
// the error with the remaining parts still held.
func (e *Engine) Release(ctx context.Context, client string, ids ...string) error {
	perNode := make(map[string][]string)
	var unrouted []string
	for _, id := range ids {
		for _, part := range e.releaseTargets(id) {
			if n, ok := e.ownerNode(part); ok {
				perNode[n] = append(perNode[n], part)
			} else {
				unrouted = append(unrouted, part)
			}
		}
	}
	for _, n := range sortedNodes(nodeSet(perNode)) {
		err := e.ports[n].Release(ctx, client, perNode[n]...)
		if err == nil {
			continue
		}
		if !errors.Is(err, core.ErrPromiseNotFound) {
			return err
		}
		// Some part migrated away; release this node's group one id at a
		// time, following each miss to wherever the id now answers.
		for _, part := range perNode[n] {
			if err := e.releaseOne(ctx, client, n, part); err != nil {
				return err
			}
		}
	}
	for _, part := range unrouted {
		if err := e.releaseOne(ctx, client, "", part); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) releaseOne(ctx context.Context, client, home, part string) error {
	var lastErr error
	if home != "" {
		lastErr = e.ports[home].Release(ctx, client, part)
		if lastErr == nil || !errors.Is(lastErr, core.ErrPromiseNotFound) {
			return lastErr
		}
	}
	for _, n := range e.order {
		if n == home {
			continue
		}
		err := e.ports[n].Release(ctx, client, part)
		if err == nil {
			return nil
		}
		lastErr = err
		if !errors.Is(err, core.ErrPromiseNotFound) {
			return err
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("%w: %s", core.ErrPromiseNotFound, part)
	}
	return lastErr
}

// Watch implements promises.Engine: one fan-in stream over every node's
// events, re-stamped with a cluster-level strictly-increasing Seq (node
// sequence numbers are per-node and would collide). AfterSeq/Replay
// resume is not supported across the fan-in; options pass through
// otherwise.
func (e *Engine) Watch(ctx context.Context, opts core.WatchOptions) (<-chan core.Event, error) {
	nopts := opts
	nopts.AfterSeq = 0
	nopts.Replay = false
	buffer := opts.Buffer
	if buffer <= 0 {
		buffer = 64
	}
	out := make(chan core.Event, buffer)
	var chans []<-chan core.Event
	for _, n := range e.order {
		ch, err := e.ports[n].Watch(ctx, nopts)
		if err != nil {
			return nil, fmt.Errorf("cluster: watch on node %s: %w", n, err)
		}
		chans = append(chans, ch)
	}
	var wg sync.WaitGroup
	for _, ch := range chans {
		wg.Add(1)
		go func(ch <-chan core.Event) {
			defer wg.Done()
			for ev := range ch {
				e.watchMu.Lock()
				ev.Seq = e.watchSeq.Add(1)
				out <- ev
				e.watchMu.Unlock()
			}
		}(ch)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out, nil
}

// Stats implements promises.Engine: the sum of every node's counters.
// Latency percentiles and per-shard detail do not aggregate across nodes;
// scrape individual nodes for those.
func (e *Engine) Stats() core.Stats {
	var out core.Stats
	for _, n := range e.order {
		st := e.ports[n].Stats()
		out.Requests += st.Requests
		out.Grants += st.Grants
		out.Rejections += st.Rejections
		out.Releases += st.Releases
		out.Expirations += st.Expirations
		out.Violations += st.Violations
		out.ActionErrors += st.ActionErrors
		out.DeadlockRetries += st.DeadlockRetries
		out.ExpiryErrors += st.ExpiryErrors
		out.PrefilterSkipped += st.PrefilterSkipped
		out.Preemptions += st.Preemptions
	}
	return out
}

// Audit implements promises.Engine: every node audits and the reports
// merge, with problems prefixed by their node id.
func (e *Engine) Audit() (*core.AuditReport, error) {
	out := &core.AuditReport{}
	for _, n := range e.order {
		rep, err := e.ports[n].Audit()
		if err != nil {
			return nil, fmt.Errorf("cluster: audit on node %s: %w", n, err)
		}
		out.ActivePromises += rep.ActivePromises
		out.Slots += rep.Slots
		for _, p := range rep.Problems {
			out.Problems = append(out.Problems, fmt.Sprintf("node %s: %s", n, p))
		}
	}
	return out, nil
}

// Close implements promises.Engine: stops the background Reconcile loop
// and closes every port.
func (e *Engine) Close() error {
	e.mu.Lock()
	e.closed = true
	stop := e.reconcileStop
	e.reconcileStop = nil
	e.mu.Unlock()
	if stop != nil {
		stop()
	}
	var firstErr error
	for _, n := range e.order {
		if err := e.ports[n].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func sortedNodes(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func nodeSet[T any](m map[string]T) map[string]bool {
	out := make(map[string]bool, len(m))
	for n := range m {
		out[n] = true
	}
	return out
}
