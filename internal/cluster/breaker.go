package cluster

// Per-node circuit breakers. A peer that stops answering fails every call
// into its transport timeout — and a federated grant pipeline that touches
// a dead node pays that timeout on every attempt, dragging down traffic
// that never needed the sick node. The breaker converts that slow failure
// into a fast one: consecutive transport failures open the circuit, calls
// fail immediately with ErrNodeUnavailable (typed, retryable — the node
// may recover), and after a cooldown a single half-open probe decides
// between closing the circuit and re-opening it.
//
// Engine errors are deliberately NOT failures: a node that answers
// "promise not found" or "bad request" — or even "degraded" — is alive
// and routing to it is fine. Only the transport-failure class (dial
// errors, timeouts, dropped responses, a crashed simulator port) trips
// the breaker.
//
// Coordinator health and breaker state feed each other: Ping and Canary
// pass through an open breaker (probes must reach a recovering node) but
// their outcomes are recorded, so a coordinator probe round both observes
// the node and heals — or re-trips — its breaker. /cluster/status shows
// the breaker column next to the health state.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/transport"
)

// ErrNodeUnavailable is the fail-fast rejection for calls to a node whose
// circuit breaker is open. It is retryable: the breaker re-probes after
// its cooldown and the node may rejoin at any moment.
var ErrNodeUnavailable = errors.New("cluster: node unavailable (circuit open)")

// BreakerState is one circuit's position.
type BreakerState string

const (
	// BreakerClosed: traffic flows; failures are being counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: calls fail fast until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: the cooldown elapsed; one probe call is deciding.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerConfig tunes a per-node circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive transport failures open the
	// circuit (0 = 5).
	Threshold int
	// Cooldown is how long an open circuit rejects before allowing the
	// half-open probe (0 = 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// transportFailure classifies an error from a node call: true means the
// transport failed (node unreachable, timed out, reply lost), false means
// the node answered — engine verdicts, however unhappy, prove liveness.
// Context cancellation is the caller's doing and proves nothing.
func transportFailure(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) {
		return false
	}
	switch {
	case errors.Is(err, core.ErrPromiseNotFound),
		errors.Is(err, core.ErrPromiseExpired),
		errors.Is(err, core.ErrPromiseReleased),
		errors.Is(err, core.ErrPromisePreempted),
		errors.Is(err, core.ErrPromiseViolated),
		errors.Is(err, core.ErrBadRequest),
		errors.Is(err, core.ErrDegraded),
		errors.Is(err, transport.ErrOverloaded):
		return false
	}
	return true
}

// breaker is the clock-driven state machine. All transitions happen under
// mu; the clock is injected so simulator tests drive cooldowns
// deterministically.
type breaker struct {
	cfg BreakerConfig
	clk clock.Clock

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(cfg BreakerConfig, clk clock.Clock) *breaker {
	if clk == nil {
		clk = clock.System{}
	}
	return &breaker{cfg: cfg.withDefaults(), clk: clk, state: BreakerClosed}
}

// allow gates one call. nil means proceed (and record the outcome); an
// error is the immediate ErrNodeUnavailable rejection.
func (b *breaker) allow(node string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.clk.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return nil // this call is the probe
		}
	case BreakerHalfOpen:
		if !b.probing {
			b.probing = true
			return nil
		}
	}
	return fmt.Errorf("%w: %s (retry after %v)", ErrNodeUnavailable, node, b.cfg.Cooldown)
}

// record feeds one call outcome into the machine.
func (b *breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !transportFailure(err) {
		if err == nil || !errors.Is(err, context.Canceled) {
			// Any real answer — success or engine verdict — closes the
			// circuit and resets the count. A canceled call proves nothing
			// and changes nothing.
			b.state = BreakerClosed
			b.fails = 0
			b.probing = false
		} else {
			b.probing = false
		}
		return
	}
	b.fails++
	b.probing = false
	if b.state == BreakerHalfOpen || b.fails >= b.cfg.Threshold {
		// A failed probe re-opens immediately; a closed circuit opens at
		// the threshold. Either way the cooldown restarts now.
		b.state = BreakerOpen
		b.openedAt = b.clk.Now()
	}
}

// snapshot returns the current state, advancing open→half-open lazily so
// status surfaces don't show "open" past the cooldown.
func (b *breaker) snapshot() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clk.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// BreakerPort wraps a NodePort with a circuit breaker. Wrap each port once
// and hand the same instance to the Engine and the Coordinator so routed
// traffic and health probes share one view of the node; both constructors
// reuse an already-wrapped port instead of double-wrapping.
type BreakerPort struct {
	NodePort
	br *breaker
}

// NewBreakerPort wraps p. clk drives the cooldown; nil means the system
// clock.
func NewBreakerPort(p NodePort, cfg BreakerConfig, clk clock.Clock) *BreakerPort {
	return &BreakerPort{NodePort: p, br: newBreaker(cfg, clk)}
}

// BreakerState reports the circuit's position (for status surfaces).
func (p *BreakerPort) BreakerState() BreakerState { return p.br.snapshot() }

// do runs one gated call: fail fast when open, otherwise record the
// outcome.
func (p *BreakerPort) do(op func() error) error {
	if err := p.br.allow(p.NodePort.ID()); err != nil {
		return err
	}
	err := op()
	p.br.record(err)
	return err
}

func (p *BreakerPort) Execute(ctx context.Context, req core.Request) (*core.Response, error) {
	var out *core.Response
	err := p.do(func() (err error) {
		out, err = p.NodePort.Execute(ctx, req)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p *BreakerPort) GrantBatch(ctx context.Context, client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error) {
	var out []core.PromiseResponse
	err := p.do(func() (err error) {
		out, err = p.NodePort.GrantBatch(ctx, client, reqs)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p *BreakerPort) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	var out []error
	err := p.do(func() (err error) {
		out, err = p.NodePort.CheckBatch(ctx, client, ids)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p *BreakerPort) Release(ctx context.Context, client string, ids ...string) error {
	return p.do(func() error { return p.NodePort.Release(ctx, client, ids...) })
}

func (p *BreakerPort) FedReserve(ctx context.Context, client string, spec core.FedReserveSpec) (*core.FedReserveResult, error) {
	var out *core.FedReserveResult
	err := p.do(func() (err error) {
		out, err = p.NodePort.FedReserve(ctx, client, spec)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (p *BreakerPort) FedConfirm(ctx context.Context, sessionID string, spec core.FedConfirmSpec) ([]core.GrantedPart, error) {
	var out []core.GrantedPart
	err := p.do(func() (err error) {
		out, err = p.NodePort.FedConfirm(ctx, sessionID, spec)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FedAbort bypasses the fail-fast gate: aborts are the unwind path of a
// failed grant and must reach the node if it answers at all — but the
// outcome still feeds the breaker.
func (p *BreakerPort) FedAbort(ctx context.Context, sessionID string) error {
	err := p.NodePort.FedAbort(ctx, sessionID)
	p.br.record(err)
	return err
}

// FedSummary is the pre-filter's read; an open breaker fails it fast, and
// the engine's pre-filter conservatively keeps erroring nodes in scope —
// the reserve that follows then fails fast too.
func (p *BreakerPort) FedSummary(ctx context.Context) (core.NodeSummary, error) {
	var out core.NodeSummary
	err := p.do(func() (err error) {
		out, err = p.NodePort.FedSummary(ctx)
		return
	})
	return out, err
}

// Ping passes through an open breaker — health probes are how a dead
// node's recovery is noticed — and its outcome feeds the breaker, so a
// coordinator probe round heals or re-trips the circuit.
func (p *BreakerPort) Ping(ctx context.Context) error {
	err := p.NodePort.Ping(ctx)
	p.br.record(err)
	return err
}

// Canary passes through like Ping.
func (p *BreakerPort) Canary(ctx context.Context) (time.Duration, error) {
	lat, err := p.NodePort.Canary(ctx)
	p.br.record(err)
	return lat, err
}

var _ NodePort = (*BreakerPort)(nil)

// wrapBreakers wraps every port not already breaker-wrapped. Shared by the
// Engine and Coordinator constructors.
func wrapBreakers(ports map[string]NodePort, cfg BreakerConfig, clk clock.Clock) {
	for id, p := range ports {
		if _, ok := p.(*BreakerPort); !ok {
			ports[id] = NewBreakerPort(p, cfg, clk)
		}
	}
}

// breakerStates snapshots the breaker column for a port set; unwrapped
// ports report no state.
func breakerStates(ports map[string]NodePort) map[string]BreakerState {
	out := make(map[string]BreakerState, len(ports))
	for id, p := range ports {
		if bp, ok := p.(*BreakerPort); ok {
			out[id] = bp.BreakerState()
		}
	}
	return out
}
