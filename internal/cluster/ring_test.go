package cluster

import (
	"fmt"
	"testing"
)

// The ring is the cluster's only agreement mechanism: every engine and
// coordinator derives ownership independently, so identical member lists
// must yield identical rings regardless of construction order.
func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n2", "n0", "n1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("pool-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q differs across member order: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingRejectsBadMemberSets(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty member list accepted")
	}
	if _, err := NewRing([]string{"n0", "n0"}, 0); err == nil {
		t.Fatal("duplicate member accepted")
	}
}

// Virtual nodes keep the split roughly fair: no member of a 3-node ring
// should own a wildly disproportionate share of the keyspace.
func TestRingBalance(t *testing.T) {
	r, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for m, share := range r.Share(8192) {
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.2f of the keyspace; want a roughly fair split", m, share)
		}
	}
}

// Removing one member must only re-home the keys it owned: everything
// else keeps its owner (the property that makes failover cheap).
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full, err := NewRing([]string{"n0", "n1", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"n0", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "n1" && after != before {
			t.Fatalf("key %q moved %s -> %s though its owner never left", key, before, after)
		}
	}
}

func TestRingSuccessorOrder(t *testing.T) {
	r, err := NewRing([]string{"n0", "n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Members() {
		order := r.SuccessorOrder(m)
		if len(order) != 3 {
			t.Fatalf("SuccessorOrder(%s) = %v; want the 3 other members", m, order)
		}
		seen := map[string]bool{m: true}
		for _, s := range order {
			if seen[s] {
				t.Fatalf("SuccessorOrder(%s) repeats %s", m, s)
			}
			seen[s] = true
		}
	}
	// Deterministic across calls.
	a, b := r.SuccessorOrder("n1"), r.SuccessorOrder("n1")
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SuccessorOrder not deterministic: %v vs %v", a, b)
		}
	}
}
