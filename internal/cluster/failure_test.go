package cluster_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/simulator"
	"repro/internal/core"
	"repro/internal/predicate"
)

// A node that applies a confirm and then dies before replying leaves the
// engine unable to tell whether the parts committed. The grant must fail,
// the ambiguity must be queued, and after the node is remediated Reconcile
// must resolve it to exactly zero holds — never a silent double-hold.
func TestCrashMidConfirmResolvesExactlyOnce(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pa := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	pb := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	for _, p := range []string{pa, pb} {
		if err := sim.CreatePool(p, 4, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Confirms run ascending by node id, so n0 goes first: it applies the
	// confirm, then the reply is lost.
	sim.Node("n0").Port().FailNext("FedConfirm", simulator.FailAfter, 1)
	_, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}})
	if err == nil {
		t.Fatal("grant succeeded though a confirm reply was lost")
	}
	if got := eng.PendingCompensations(); got == 0 {
		t.Fatal("lost confirm reply queued no compensation")
	}

	// The node then crashes outright; reconciliation cannot reach it yet.
	sim.Node("n0").Port().Crash()
	if err := eng.Reconcile(bg); err == nil {
		t.Fatal("Reconcile reported success while the ambiguous node is down")
	}
	if got := eng.PendingCompensations(); got == 0 {
		t.Fatal("compensation dropped while its node was unreachable")
	}

	// Remediation: the node restarts with its committed state, Reconcile
	// releases whatever the lost confirm left behind.
	sim.Node("n0").Port().Restart()
	if err := eng.Reconcile(bg); err != nil {
		t.Fatalf("Reconcile after restart: %v", err)
	}
	if got := eng.PendingCompensations(); got != 0 {
		t.Fatalf("%d compensations still pending after Reconcile", got)
	}

	// Exactly once: the failed grant holds nothing anywhere, so the full
	// capacity of both pools is grantable again.
	resps, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Accepted {
		t.Fatalf("full-capacity grant rejected after remediation: %s", resps[0].Reason)
	}
	rep, err := eng.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("cluster unhealthy after remediation: %v", rep.Problems)
	}
}

// A partition that strikes between the first and second reserve must leave
// no reservation behind on the nodes that did answer.
func TestPartitionDuringReserveAbortsEverywhere(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pa := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	pb := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	for _, p := range []string{pa, pb} {
		if err := sim.CreatePool(p, 4, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Reserves run ascending, so n0 reserves first; n2's reserve then
	// never arrives.
	sim.Node("n2").Port().FailNext("FedReserve", simulator.FailBefore, 1)
	_, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}})
	if err == nil {
		t.Fatal("grant succeeded though one reserve was partitioned away")
	}
	if got := sim.Node("n0").Port().Calls("FedAbort"); got == 0 {
		t.Fatal("n0's reservation was never aborted")
	}
	if got := eng.PendingCompensations(); got != 0 {
		t.Fatalf("a clean abort queued %d compensations; nothing committed", got)
	}

	// Nothing may remain reserved: both pools grant at full capacity.
	resps, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Accepted {
		t.Fatalf("full-capacity grant rejected after aborted reserve: %s", resps[0].Reason)
	}
}

// The coordinator drains a slow node: the held promise migrates to a ring
// successor with its id and expiry intact, the engine's Watch stream
// reports the move without breaking, and the promise stays checkable the
// whole time.
func TestCoordinatorDrainPreservesHeldPromise(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	// One matching instance per node: wherever the grant lands, the other
	// instance is the drain's landing zone.
	instA := nameOwnedBy(t, sim.Ring(), "n0", "inst")
	instB := nameOwnedBy(t, sim.Ring(), "n1", "inst")
	props := map[string]predicate.Value{"beds": predicate.Str("twin")}
	for _, in := range []string{instA, instB} {
		if err := sim.CreateInstance(in, props); err != nil {
			t.Fatal(err)
		}
	}

	resps, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.MustProperty(`beds = "twin"`)},
		Duration:   24 * time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	pr := resps[0]
	if !pr.Accepted {
		t.Fatalf("grant rejected: %s", pr.Reason)
	}
	holder, _, _ := strings.Cut(pr.PromiseID, "!")

	events, err := eng.Watch(bg, core.WatchOptions{Types: []core.EventType{core.EventMigrated}})
	if err != nil {
		t.Fatal(err)
	}

	coord, err := sim.Coordinator(cluster.CoordinatorConfig{SlowThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The holding node turns slow: its canary blows the 250ms budget.
	sim.Node(holder).Port().SetCanaryLatency(time.Second)
	coord.Tick(bg)
	coord.Tick(bg)

	st := coord.Status()
	var holderState cluster.NodeState
	for _, n := range st.Nodes {
		if n.ID == holder {
			holderState = n.State
		}
	}
	if holderState != cluster.StateDraining {
		t.Fatalf("slow node %s in state %s, want draining", holder, holderState)
	}
	if len(st.Migrations) != 1 {
		t.Fatalf("drain recorded %d migrations, want 1: %+v", len(st.Migrations), st.Migrations)
	}
	mig := st.Migrations[0]
	if mig.Promise != pr.PromiseID || mig.From != holder {
		t.Fatalf("migration %+v does not match promise %s on %s", mig, pr.PromiseID, holder)
	}

	// The Watch stream survives the migration and reports it.
	select {
	case ev := <-events:
		if ev.Type != core.EventMigrated {
			t.Fatalf("event type %s, want %s", ev.Type, core.EventMigrated)
		}
		if ev.Seq == 0 {
			t.Fatal("migrated event carries no cluster sequence")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no migrated event on the engine's Watch stream")
	}

	// Same id, still usable, expiry preserved across the move.
	verdicts, err := eng.CheckBatch(bg, "alice", []string{pr.PromiseID})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0] != nil {
		t.Fatalf("migrated promise not usable: %v", verdicts[0])
	}
	// Expiry preserved exactly: alive one second before the granted
	// expiry, gone one second after.
	sim.Advance(pr.Expires.Sub(sim.Clock().Now()) - time.Second)
	verdicts, _ = eng.CheckBatch(bg, "alice", []string{pr.PromiseID})
	if verdicts[0] != nil {
		t.Fatalf("migrated promise expired early: %v", verdicts[0])
	}
	sim.Advance(2 * time.Second)
	verdicts, _ = eng.CheckBatch(bg, "alice", []string{pr.PromiseID})
	if verdicts[0] == nil {
		t.Fatal("migrated promise alive past its granted expiry")
	}

	// The node speeds up again and is re-admitted.
	sim.Node(holder).Port().SetCanaryLatency(time.Millisecond)
	coord.Tick(bg)
	for _, n := range coord.Status().Nodes {
		if n.ID == holder && n.State != cluster.StateHealthy {
			t.Fatalf("fast-again node %s stuck in %s", holder, n.State)
		}
	}
}

// The ping half of the health machine: healthy -> suspect -> down after
// FailThreshold consecutive misses, healthy again the moment a ping lands.
func TestCoordinatorPingStateMachine(t *testing.T) {
	sim, _ := newSim(t, core.MatchingMode)
	coord, err := sim.Coordinator(cluster.CoordinatorConfig{FailThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	state := func(id string) cluster.NodeState {
		t.Helper()
		for _, n := range coord.Status().Nodes {
			if n.ID == id {
				return n.State
			}
		}
		t.Fatalf("node %s missing from status", id)
		return ""
	}

	coord.Tick(bg)
	if got := state("n1"); got != cluster.StateHealthy {
		t.Fatalf("fresh node state %s, want healthy", got)
	}

	sim.Node("n1").Port().Partition(true)
	coord.Tick(bg)
	if got := state("n1"); got != cluster.StateSuspect {
		t.Fatalf("after 1 missed ping: %s, want suspect", got)
	}
	coord.Tick(bg)
	if got := state("n1"); got != cluster.StateSuspect {
		t.Fatalf("after 2 missed pings: %s, want suspect", got)
	}
	coord.Tick(bg)
	if got := state("n1"); got != cluster.StateDown {
		t.Fatalf("after 3 missed pings: %s, want down", got)
	}

	sim.Node("n1").Port().Partition(false)
	coord.Tick(bg)
	if got := state("n1"); got != cluster.StateHealthy {
		t.Fatalf("healed node state %s, want healthy", got)
	}
}

// A high-priority federated grant that displaces a spot hold on one node,
// whose confirm applies there but the reply is lost and the node then
// crashes, must resolve exactly-once: the failed grant ends up holding
// nothing, the spot victim is displaced exactly once (one preempted event),
// and after remediation the full capacity is grantable again.
func TestPreemptionRacingCrashResolvesExactlyOnce(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pa := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	pb := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	for _, p := range []string{pa, pb} {
		if err := sim.CreatePool(p, 4, nil); err != nil {
			t.Fatal(err)
		}
	}

	// A spot workload holds all of pa.
	resps, err := eng.GrantBatch(bg, "spot", []core.PromiseRequest{{
		Predicates:  []core.Predicate{core.Quantity(pa, 4)},
		Duration:    2 * time.Hour,
		Preemptible: true,
	}})
	if err != nil || !resps[0].Accepted {
		t.Fatalf("spot grant: %v %+v", err, resps)
	}
	spotID := resps[0].PromiseID

	events, err := eng.Watch(bg, core.WatchOptions{Types: []core.EventType{core.EventPreempted}})
	if err != nil {
		t.Fatal(err)
	}

	// The on-demand grant spans both nodes, so it takes the federated path;
	// its reserve on n0 displaces the spot hold. Confirms run ascending, so
	// n0 applies first — victim revoked, part granted — and the reply is
	// lost; the node then crashes before remediation can reach it.
	sim.Node("n0").Port().FailNext("FedConfirm", simulator.FailAfter, 1)
	_, err = eng.GrantBatch(bg, "ondemand", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
		Priority:   1,
	}})
	if err == nil {
		t.Fatal("preempting grant succeeded though its confirm reply was lost")
	}
	if got := eng.PendingCompensations(); got == 0 {
		t.Fatal("lost confirm reply queued no compensation")
	}
	sim.Node("n0").Port().Crash()
	if err := eng.Reconcile(bg); err == nil {
		t.Fatal("Reconcile reported success while the ambiguous node is down")
	}

	// Remediation: the node restarts with its committed state (the victim's
	// revocation and the orphaned part both committed with the confirm) and
	// Reconcile releases the part the failed grant left behind.
	sim.Node("n0").Port().Restart()
	if err := eng.Reconcile(bg); err != nil {
		t.Fatalf("Reconcile after restart: %v", err)
	}
	if got := eng.PendingCompensations(); got != 0 {
		t.Fatalf("%d compensations still pending after Reconcile", got)
	}

	// The victim was displaced exactly once: its verdict is preempted, and
	// exactly one preempted event crossed the cluster Watch stream.
	verdicts, err := eng.CheckBatch(bg, "spot", []string{spotID})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(verdicts[0], core.ErrPromisePreempted) {
		t.Fatalf("spot verdict = %v, want preempted", verdicts[0])
	}
	select {
	case ev := <-events:
		if ev.Type != core.EventPreempted || ev.PromiseID != spotID {
			t.Fatalf("event %+v, want preempted %s", ev, spotID)
		}
		if ev.By == "" || ev.Priority != 1 {
			t.Fatalf("preempted event By=%q Priority=%d, want displacing part id and tier 1", ev.By, ev.Priority)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no preempted event on the cluster Watch stream")
	}
	select {
	case ev := <-events:
		t.Fatalf("duplicate preempted event: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}

	// Exactly once, capacity-wise: the failed grant holds nothing, so the
	// full capacity of both pools is grantable again.
	resps, err = eng.GrantBatch(bg, "carol", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Accepted {
		t.Fatalf("full-capacity grant rejected after remediation: %s", resps[0].Reason)
	}
	rep, err := eng.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("cluster unhealthy after remediation: %v", rep.Problems)
	}
}

// With ReconcileEvery set, queued compensations drain on the clock alarm
// cadence without any explicit Reconcile call, and Close stops the loop.
func TestBackgroundReconcileLoopDrainsQueue(t *testing.T) {
	sim, err := simulator.New(simulator.Config{Nodes: []string{"n0", "n1", "n2"}, Mode: core.MatchingMode})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Ports:          sim.Ports(),
		Clock:          sim.Clock(),
		Mode:           core.MatchingMode,
		ReconcileEvery: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pa := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	pb := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	for _, p := range []string{pa, pb} {
		if err := sim.CreatePool(p, 4, nil); err != nil {
			t.Fatal(err)
		}
	}

	sim.Node("n0").Port().FailNext("FedConfirm", simulator.FailAfter, 1)
	if _, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}}); err == nil {
		t.Fatal("grant succeeded though a confirm reply was lost")
	}
	if got := eng.PendingCompensations(); got == 0 {
		t.Fatal("lost confirm reply queued no compensation")
	}

	// Short of the cadence nothing fires; crossing it drains the queue.
	sim.Advance(30 * time.Second)
	if got := eng.PendingCompensations(); got == 0 {
		t.Fatal("reconcile loop fired before its cadence")
	}
	sim.Advance(30 * time.Second)
	if got := eng.PendingCompensations(); got != 0 {
		t.Fatalf("%d compensations still pending after the reconcile alarm", got)
	}

	// The loop re-arms: a second round drains on the next alarm too.
	sim.Node("n0").Port().FailNext("FedConfirm", simulator.FailAfter, 1)
	if _, err := eng.GrantBatch(bg, "bob", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pa, 4), core.Quantity(pb, 4)},
		Duration:   time.Hour,
	}}); err == nil {
		t.Fatal("second grant succeeded though a confirm reply was lost")
	}
	if got := eng.PendingCompensations(); got == 0 {
		t.Fatal("second lost reply queued no compensation")
	}
	sim.Advance(time.Minute)
	if got := eng.PendingCompensations(); got != 0 {
		t.Fatalf("%d compensations still pending after the second alarm", got)
	}
}
