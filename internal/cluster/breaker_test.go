package cluster_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/simulator"
	"repro/internal/core"
	"repro/internal/failpoint"
)

const (
	brThreshold = 3
	brCooldown  = 5 * time.Second
)

// newBreakerSim builds a simulated cluster whose engine wraps every port
// in a circuit breaker driven by the shared fake clock.
func newBreakerSim(t *testing.T, mode core.PropertyMode) (*simulator.Cluster, *cluster.Engine) {
	t.Helper()
	sim, err := simulator.New(simulator.Config{Nodes: []string{"n0", "n1", "n2"}, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{
		Ports: sim.Ports(),
		Clock: sim.Clock(),
		Mode:  mode,
		Breaker: &cluster.BreakerConfig{
			Threshold: brThreshold,
			Cooldown:  brCooldown,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return sim, eng
}

// grant1 asks the engine for one unit of pool for an hour.
func grant1(eng *cluster.Engine, client, pool string) (core.PromiseResponse, error) {
	return grantN(eng, client, pool, 1)
}

func grantN(eng *cluster.Engine, client, pool string, n int64) (core.PromiseResponse, error) {
	resps, err := eng.GrantBatch(bg, client, []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pool, n)},
		Duration:   time.Hour,
	}})
	if err != nil {
		return core.PromiseResponse{}, err
	}
	return resps[0], nil
}

// TestBreakerTripHalfOpenRecover drives the full circuit lifecycle against
// a hard-down node, deterministically on the fake clock: consecutive
// transport failures open the circuit; open means fail-fast (the dead
// port sees no more calls); the cooldown admits exactly one probe; a
// failed probe re-opens; a successful probe after restart closes and
// traffic flows again.
func TestBreakerTripHalfOpenRecover(t *testing.T) {
	sim, eng := newBreakerSim(t, core.MatchingMode)
	pool := nameOwnedBy(t, sim.Ring(), "n1", "pool")
	if err := sim.CreatePool(pool, 100, nil); err != nil {
		t.Fatal(err)
	}
	victim := sim.Node("n1").Port()

	if _, err := grant1(eng, "alice", pool); err != nil {
		t.Fatalf("healthy grant: %v", err)
	}
	if st := eng.BreakerStates()["n1"]; st != cluster.BreakerClosed {
		t.Fatalf("breaker after healthy grant = %s", st)
	}

	victim.Crash()
	// Threshold consecutive failures trip the circuit; each one still
	// reaches (and bounces off) the dead port.
	for i := 0; i < brThreshold; i++ {
		if _, err := grant1(eng, "alice", pool); err == nil {
			t.Fatalf("grant %d against crashed node succeeded", i)
		} else if errors.Is(err, cluster.ErrNodeUnavailable) {
			t.Fatalf("grant %d failed fast before the threshold: %v", i, err)
		}
	}
	if st := eng.BreakerStates()["n1"]; st != cluster.BreakerOpen {
		t.Fatalf("breaker after %d failures = %s, want open", brThreshold, st)
	}

	// Open: fail fast, no call reaches the node.
	before := victim.Calls("GrantBatch")
	for i := 0; i < 3; i++ {
		if _, err := grant1(eng, "alice", pool); !errors.Is(err, cluster.ErrNodeUnavailable) {
			t.Fatalf("grant with open breaker = %v, want ErrNodeUnavailable", err)
		}
	}
	if got := victim.Calls("GrantBatch"); got != before {
		t.Fatalf("open breaker let %d calls through", got-before)
	}

	// Cooldown elapses; the next call is the half-open probe — it reaches
	// the still-dead node, fails, and re-opens the circuit.
	sim.Advance(brCooldown)
	if _, err := grant1(eng, "alice", pool); err == nil || errors.Is(err, cluster.ErrNodeUnavailable) {
		t.Fatalf("half-open probe = %v, want a transport failure that reached the node", err)
	}
	if got := victim.Calls("GrantBatch"); got != before+1 {
		t.Fatalf("half-open admitted %d calls, want exactly 1", got-before)
	}
	if _, err := grant1(eng, "alice", pool); !errors.Is(err, cluster.ErrNodeUnavailable) {
		t.Fatalf("post-probe grant = %v, want fail-fast (circuit re-opened)", err)
	}

	// Node restarts; after another cooldown the probe succeeds and the
	// circuit closes for good.
	victim.Restart()
	sim.Advance(brCooldown)
	resp, err := grant1(eng, "alice", pool)
	if err != nil || !resp.Accepted {
		t.Fatalf("probe grant after restart = %+v / %v", resp, err)
	}
	if st := eng.BreakerStates()["n1"]; st != cluster.BreakerClosed {
		t.Fatalf("breaker after recovery = %s, want closed", st)
	}
	if _, err := grant1(eng, "alice", pool); err != nil {
		t.Fatalf("grant after recovery: %v", err)
	}
}

// TestBreakerIsolatesHealthyOwners is the acceptance scenario: one node
// hard-down must not affect grants whose pools live on healthy owners —
// after the trip, the dead node sees zero additional traffic — while
// cross-node grants touching the dead node fail fast with the typed
// error, leak nothing, and succeed exactly once after recovery.
func TestBreakerIsolatesHealthyOwners(t *testing.T) {
	sim, eng := newBreakerSim(t, core.MatchingMode)
	healthyPool := nameOwnedBy(t, sim.Ring(), "n0", "hp")
	deadPool := nameOwnedBy(t, sim.Ring(), "n1", "dp")
	for _, p := range []string{healthyPool, deadPool} {
		if err := sim.CreatePool(p, 100, nil); err != nil {
			t.Fatal(err)
		}
	}
	victim := sim.Node("n1").Port()
	victim.Crash()
	for i := 0; i < brThreshold; i++ {
		if _, err := grant1(eng, "alice", deadPool); err == nil {
			t.Fatal("grant against crashed node succeeded")
		}
	}

	// Healthy-owner traffic: full speed, and the dead node is never
	// touched — no timeout can leak into its latency profile.
	deadCalls := victim.Calls("GrantBatch") + victim.Calls("FedReserve") + victim.Calls("Execute")
	for i := 0; i < 20; i++ {
		resp, err := grant1(eng, fmt.Sprintf("client-%d", i), healthyPool)
		if err != nil || !resp.Accepted {
			t.Fatalf("healthy grant %d = %+v / %v", i, resp, err)
		}
	}
	if got := victim.Calls("GrantBatch") + victim.Calls("FedReserve") + victim.Calls("Execute"); got != deadCalls {
		t.Fatalf("healthy-owner grants sent %d calls to the dead node", got-deadCalls)
	}

	// A spanning grant needs both nodes: it must fail fast on the open
	// breaker, with nothing reserved or compensation-queued on the
	// healthy node.
	_, err := eng.GrantBatch(bg, "bob", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(healthyPool, 2), core.Quantity(deadPool, 2)},
		Duration:   time.Hour,
	}})
	if !errors.Is(err, cluster.ErrNodeUnavailable) {
		t.Fatalf("spanning grant with dead participant = %v, want ErrNodeUnavailable", err)
	}
	if n := eng.PendingCompensations(); n != 0 {
		t.Fatalf("failed-fast spanning grant queued %d compensations", n)
	}
	// Nothing may remain reserved on the healthy node: the full remaining
	// capacity (100 - 20 held) is still grantable.
	probe, err := grantN(eng, "probe", healthyPool, 100-20)
	if err != nil || !probe.Accepted {
		t.Fatalf("full-capacity probe after failed-fast grant = %+v / %v (leaked reservation?)", probe, err)
	}
	if err := eng.Release(bg, "probe", probe.PromiseID); err != nil {
		t.Fatalf("release probe: %v", err)
	}

	// Recovery: restart, cooldown, and the same spanning grant lands
	// exactly once; Reconcile has nothing to do and both nodes audit
	// clean.
	victim.Restart()
	sim.Advance(brCooldown)
	resps, err := eng.GrantBatch(bg, "bob", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(healthyPool, 2), core.Quantity(deadPool, 2)},
		Duration:   time.Hour,
	}})
	if err != nil || !resps[0].Accepted {
		t.Fatalf("spanning grant after recovery = %+v / %v", resps, err)
	}
	if err := eng.Reconcile(bg); err != nil {
		t.Fatalf("reconcile after recovery: %v", err)
	}
	for _, n := range []string{"n0", "n1"} {
		rep, err := sim.Node(n).Manager().Audit()
		if err != nil || !rep.Healthy() {
			t.Fatalf("node %s audit after recovery: %+v / %v", n, rep, err)
		}
	}
	// Exactly once, capacity-wise: the recovered spanning grant holds 2 on
	// each pool — one unit more is rejected, the exact remainder accepted.
	if over, err := grantN(eng, "probe", healthyPool, 100-20-2+1); err != nil || over.Accepted {
		t.Fatalf("over-capacity probe = %+v / %v, want rejection (grant applied twice or zero times?)", over, err)
	}
	if exact, err := grantN(eng, "probe", healthyPool, 100-20-2); err != nil || !exact.Accepted {
		t.Fatalf("exact-capacity probe on %s = %+v / %v", healthyPool, exact, err)
	}
	if exact, err := grantN(eng, "probe", deadPool, 100-2); err != nil || !exact.Accepted {
		t.Fatalf("exact-capacity probe on %s = %+v / %v", deadPool, exact, err)
	}
}

// TestCoordinatorShowsAndHealsBreakers: probe rounds and breakers feed
// each other — ping failures trip the shared circuit, /cluster/status
// reports it next to the node state, and the probe that finds the node
// alive again closes the circuit without waiting for data traffic.
func TestCoordinatorShowsAndHealsBreakers(t *testing.T) {
	sim, err := simulator.New(simulator.Config{Nodes: []string{"n0", "n1", "n2"}, Mode: core.MatchingMode})
	if err != nil {
		t.Fatal(err)
	}
	// Wrap once, share between engine and coordinator: data traffic and
	// probes drive one breaker per node.
	cfg := cluster.BreakerConfig{Threshold: brThreshold, Cooldown: brCooldown}
	var shared []cluster.NodePort
	for _, p := range sim.Ports() {
		shared = append(shared, cluster.NewBreakerPort(p, cfg, sim.Clock()))
	}
	eng, err2 := cluster.New(cluster.Config{Ports: shared, Clock: sim.Clock(), Mode: core.MatchingMode})
	if err2 != nil {
		t.Fatal(err2)
	}
	t.Cleanup(func() { _ = eng.Close() })
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Ports: shared, Clock: sim.Clock(), FailThreshold: brThreshold,
	})
	if err != nil {
		t.Fatal(err)
	}

	sim.Node("n2").Port().Crash()
	for i := 0; i < brThreshold; i++ {
		coord.Tick(bg)
	}
	var n2 cluster.NodeStatus
	for _, ns := range coord.Status().Nodes {
		if ns.ID == "n2" {
			n2 = ns
		}
	}
	if n2.State != cluster.StateDown || n2.Breaker != cluster.BreakerOpen {
		t.Fatalf("n2 status = state=%s breaker=%s, want down/open", n2.State, n2.Breaker)
	}
	// The engine shares the circuit: data traffic fails fast immediately.
	pool := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	if err := sim.CreatePool(pool, 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := grant1(eng, "alice", pool); !errors.Is(err, cluster.ErrNodeUnavailable) {
		t.Fatalf("grant via shared open breaker = %v, want ErrNodeUnavailable", err)
	}

	// After the cooldown the status column shows half-open; the next probe
	// round reaches the recovered node and closes the circuit.
	sim.Node("n2").Port().Restart()
	sim.Advance(brCooldown)
	if st := coord.BreakerStates()["n2"]; st != cluster.BreakerHalfOpen {
		t.Fatalf("breaker past cooldown = %s, want half-open", st)
	}
	coord.Tick(bg)
	for _, ns := range coord.Status().Nodes {
		if ns.ID == "n2" && (ns.State != cluster.StateHealthy || ns.Breaker != cluster.BreakerClosed) {
			t.Fatalf("n2 after recovery probe = state=%s breaker=%s, want healthy/closed", ns.State, ns.Breaker)
		}
	}
	if resp, err := grant1(eng, "alice", pool); err != nil || !resp.Accepted {
		t.Fatalf("grant after probe-healed breaker = %+v / %v", resp, err)
	}
}

// TestFailpointDrivesBreakerTrip injects transport faults through the
// failpoint harness instead of a crash: exactly Threshold armed errors on
// the simulator's GrantBatch hook open the circuit, and once the injection
// budget is spent a cooldown-probe closes it again — the chaos-drill shape
// CI's chaos-smoke job runs against a live daemon.
func TestFailpointDrivesBreakerTrip(t *testing.T) {
	sim, eng := newBreakerSim(t, core.MatchingMode)
	pool := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	if err := sim.CreatePool(pool, 10, nil); err != nil {
		t.Fatal(err)
	}

	if err := failpoint.Arm(fmt.Sprintf("sim/GrantBatch=%d*error(injected fault)", brThreshold)); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Reset()

	for i := 0; i < brThreshold; i++ {
		_, err := grant1(eng, "alice", pool)
		if err == nil || !strings.Contains(err.Error(), "injected fault") {
			t.Fatalf("grant %d under armed failpoint = %v, want injected fault", i, err)
		}
	}
	if st := eng.BreakerStates()["n0"]; st != cluster.BreakerOpen {
		t.Fatalf("breaker after %d injected faults = %s, want open", brThreshold, st)
	}
	if _, err := grant1(eng, "alice", pool); !errors.Is(err, cluster.ErrNodeUnavailable) {
		t.Fatalf("grant with open breaker = %v, want ErrNodeUnavailable", err)
	}

	// The injection budget is exhausted; the cooldown probe finds the node
	// healthy and the circuit closes.
	sim.Advance(brCooldown)
	if resp, err := grant1(eng, "alice", pool); err != nil || !resp.Accepted {
		t.Fatalf("probe grant after faults drained = %+v / %v", resp, err)
	}
	if st := eng.BreakerStates()["n0"]; st != cluster.BreakerClosed {
		t.Fatalf("breaker after recovery = %s, want closed", st)
	}
}
