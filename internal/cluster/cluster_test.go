package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/simulator"
	"repro/internal/core"
	"repro/internal/predicate"
)

var bg = context.Background()

// newSim builds a 3-node simulated cluster and its federated engine.
func newSim(t *testing.T, mode core.PropertyMode) (*simulator.Cluster, *cluster.Engine) {
	t.Helper()
	sim, err := simulator.New(simulator.Config{Nodes: []string{"n0", "n1", "n2"}, Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.Engine(mode)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = eng.Close() })
	return sim, eng
}

// nameOwnedBy finds a resource name the ring assigns to the wanted node.
func nameOwnedBy(t *testing.T, r *cluster.Ring, node, prefix string) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("%s-%d", prefix, i)
		if r.Owner(name) == node {
			return name
		}
	}
	t.Fatalf("no %s-* name owned by %s in 10000 tries", prefix, node)
	return ""
}

// The acceptance pin: a grant whose resources live on one node forwards to
// that node in a single round trip — no federation verbs, no traffic to
// any other node, no coordinator anywhere in the path.
func TestSinglePoolGrantBypassesFederation(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pool := nameOwnedBy(t, sim.Ring(), "n1", "pool")
	if err := sim.CreatePool(pool, 10, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := eng.Execute(bg, core.Request{
		Client: "alice",
		PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pool, 3)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	if !strings.HasPrefix(pr.PromiseID, "n1!") {
		t.Fatalf("promise id %q not namespaced to the owning node", pr.PromiseID)
	}

	for _, id := range []string{"n0", "n1", "n2"} {
		p := sim.Node(id).Port()
		wantExec := 0
		if id == "n1" {
			wantExec = 1
		}
		if got := p.Calls("Execute"); got != wantExec {
			t.Errorf("node %s saw %d Execute calls, want %d", id, got, wantExec)
		}
		for _, op := range []string{"FedReserve", "FedConfirm", "FedAbort", "FedSummary"} {
			if got := p.Calls(op); got != 0 {
				t.Errorf("node %s saw %d %s calls on a single-pool grant, want 0", id, got, op)
			}
		}
	}
}

// A grant spanning pools on two nodes runs the two-phase path and yields a
// cluster composite that checks and releases like any promise.
func TestCrossNodeCompositeGrant(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pa := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	pb := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	for _, p := range []string{pa, pb} {
		if err := sim.CreatePool(p, 5, nil); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := eng.Execute(bg, core.Request{
		Client: "alice",
		PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pa, 2), core.Quantity(pb, 3)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		t.Fatalf("rejected: %s", pr.Reason)
	}
	if !strings.HasPrefix(pr.PromiseID, cluster.CompositePrefix) {
		t.Fatalf("cross-node grant id %q is not a cluster composite", pr.PromiseID)
	}

	verdicts, err := eng.CheckBatch(bg, "alice", []string{pr.PromiseID})
	if err != nil {
		t.Fatal(err)
	}
	if verdicts[0] != nil {
		t.Fatalf("fresh composite not usable: %v", verdicts[0])
	}

	if err := eng.Release(bg, "alice", pr.PromiseID); err != nil {
		t.Fatalf("release composite: %v", err)
	}
	verdicts, err = eng.CheckBatch(bg, "alice", []string{pr.PromiseID})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(verdicts[0], core.ErrPromiseReleased) && !errors.Is(verdicts[0], core.ErrPromiseNotFound) {
		t.Fatalf("released composite verdict = %v, want released/not-found", verdicts[0])
	}

	// Over-asking either pool now rejects, proving the release restored it.
	resp, err = eng.Execute(bg, core.Request{
		Client: "alice",
		PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pa, 5), core.Quantity(pb, 5)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Promises[0].Accepted {
		t.Fatalf("full-capacity regrant rejected after release: %s", resp.Promises[0].Reason)
	}
}

// A property grant that can only be satisfied by displacing an earlier
// grant's slot to an instance on a different node must succeed: the joint
// match spans the cluster, and the displaced promise migrates with its id
// intact.
func TestFederatedPropertyGrantDisplacesAcrossNodes(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	// instA (node n0): red. instB (node n1): red AND big.
	instA := nameOwnedBy(t, sim.Ring(), "n0", "inst")
	instB := nameOwnedBy(t, sim.Ring(), "n1", "inst")
	if err := sim.CreateInstance(instA, map[string]predicate.Value{"color": predicate.Str("red")}); err != nil {
		t.Fatal(err)
	}
	if err := sim.CreateInstance(instB, map[string]predicate.Value{"color": predicate.Str("red"), "size": predicate.Str("big")}); err != nil {
		t.Fatal(err)
	}

	grant := func(expr string) core.PromiseResponse {
		t.Helper()
		resp, err := eng.Execute(bg, core.Request{
			Client: "alice",
			PromiseRequests: []core.PromiseRequest{{
				Predicates: []core.Predicate{core.MustProperty(expr)},
				Duration:   time.Hour,
			}},
		})
		if err != nil {
			t.Fatalf("grant %q: %v", expr, err)
		}
		return resp.Promises[0]
	}

	red := grant(`color = "red"`)
	if !red.Accepted {
		t.Fatalf("red grant rejected: %s", red.Reason)
	}
	big := grant(`size = "big"`)
	if !big.Accepted {
		t.Fatalf("big grant rejected: %s (the red slot should displace to the other node)", big.Reason)
	}

	verdicts, err := eng.CheckBatch(bg, "alice", []string{red.PromiseID, big.PromiseID})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range verdicts {
		if v != nil {
			t.Errorf("promise %d not usable after displacement: %v", i, v)
		}
	}

	// Both instances are now pinned; a third selective grant must reject
	// with the joint-unsatisfiability reason, exactly as a single store
	// would.
	again := grant(`size = "big"`)
	if again.Accepted {
		t.Fatal("third grant accepted though both instances are held")
	}
}

// Watch fans in every node's stream with a cluster-level total order.
func TestWatchFanInAcrossNodes(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pa := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	pb := nameOwnedBy(t, sim.Ring(), "n2", "pool")
	for _, p := range []string{pa, pb} {
		if err := sim.CreatePool(p, 5, nil); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(bg)
	defer cancel()
	events, err := eng.Watch(ctx, core.WatchOptions{Types: []core.EventType{core.EventGranted}})
	if err != nil {
		t.Fatal(err)
	}

	for _, pool := range []string{pa, pb} {
		resp, err := eng.Execute(bg, core.Request{
			Client: "alice",
			PromiseRequests: []core.PromiseRequest{{
				Predicates: []core.Predicate{core.Quantity(pool, 1)},
				Duration:   time.Minute,
			}},
		})
		if err != nil || !resp.Promises[0].Accepted {
			t.Fatalf("grant on %s: %v %+v", pool, err, resp)
		}
	}

	var seqs []uint64
	nodesSeen := map[string]bool{}
	for len(seqs) < 2 {
		select {
		case ev := <-events:
			seqs = append(seqs, ev.Seq)
			nodesSeen[strings.SplitN(ev.PromiseID, "!", 2)[0]] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("saw %d granted events, want 2", len(seqs))
		}
	}
	if !(seqs[0] < seqs[1]) {
		t.Fatalf("fan-in sequence not strictly increasing: %v", seqs)
	}
	if len(nodesSeen) != 2 {
		t.Fatalf("events came from nodes %v, want both n0 and n2", nodesSeen)
	}
}

// Stats sums every node's counters.
func TestStatsAggregation(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pool := nameOwnedBy(t, sim.Ring(), "n0", "pool")
	if err := sim.CreatePool(pool, 10, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pool, 1)},
			Duration:   time.Minute,
		}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := eng.Stats(); st.Grants != 3 {
		t.Fatalf("cluster Stats.Grants = %d, want 3", st.Grants)
	}
}

// Audit merges every node's report with node-prefixed problems.
func TestAuditAggregation(t *testing.T) {
	sim, eng := newSim(t, core.MatchingMode)
	pool := nameOwnedBy(t, sim.Ring(), "n1", "pool")
	if err := sim.CreatePool(pool, 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
		Predicates: []core.Predicate{core.Quantity(pool, 1)},
		Duration:   time.Minute,
	}}); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("fresh cluster unhealthy: %v", rep.Problems)
	}
	if rep.ActivePromises != 1 {
		t.Fatalf("merged ActivePromises = %d, want 1", rep.ActivePromises)
	}
}
