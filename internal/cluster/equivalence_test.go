package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/simulator"
	"repro/internal/core"
	"repro/internal/predicate"
)

// classify maps a check/release outcome to its sentinel class; reason
// strings and error text are presentation, not semantics.
func classify(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, core.ErrPromiseNotFound):
		return "not-found"
	case errors.Is(err, core.ErrPromiseReleased):
		return "released"
	case errors.Is(err, core.ErrPromiseExpired):
		return "expired"
	case errors.Is(err, core.ErrPromisePreempted):
		return "preempted"
	default:
		return "other:" + err.Error()
	}
}

// pair tracks one logical promise granted to both systems under test.
type pair struct {
	cid, rid string   // cluster id / reference id
	parts    []string // the cluster id's node-namespaced parts
	dead     bool     // released (or modified away)
}

func partsOf(cid string) []string {
	if !strings.HasPrefix(cid, cluster.CompositePrefix) {
		return []string{cid}
	}
	return strings.Split(strings.TrimPrefix(cid, cluster.CompositePrefix), "+")
}

// onSurvivors reports whether every part of the pair lives outside the
// crashed node.
func (p *pair) onSurvivors(crashed string) bool {
	for _, part := range p.parts {
		if strings.HasPrefix(part, crashed+"!") {
			return false
		}
	}
	return true
}

// TestClusterEquivalenceRandom drives an identical randomized workload
// through a simulated 3-node federation and through one ShardedManager on
// the same fake clock, and requires them to agree on every observable:
// accept/reject of each grant, the sentinel class of every check and
// release, pool levels, and audit health. Midway one node is killed —
// with a confirm reply lost in flight — and later remediated; after
// Reconcile the two systems must agree again on everything, including the
// promises that rode out the outage on the dead node.
func TestClusterEquivalenceRandom(t *testing.T) {
	for _, seed := range []int64{7, 21, 99} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { runEquivalence(t, seed) })
	}
}

func runEquivalence(t *testing.T, seed int64) {
	const (
		crashNode  = "n1"
		crashRound = 40
		healRound  = 80
		rounds     = 120
	)
	sim, eng := newSim(t, core.MatchingMode)
	ref, err := core.NewSharded(core.ShardedConfig{
		Shards:       4,
		Clock:        sim.Clock(),
		PropertyMode: core.MatchingMode,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	// Resources: four pools and three property instances per node, mirrored
	// into the reference store.
	poolsBy := map[string][]string{}
	for i := 0; len(poolsBy["n0"]) < 4 || len(poolsBy["n1"]) < 4 || len(poolsBy["n2"]) < 4; i++ {
		name := fmt.Sprintf("pool-%d", i)
		own := sim.Ring().Owner(name)
		if len(poolsBy[own]) >= 4 {
			continue
		}
		poolsBy[own] = append(poolsBy[own], name)
		if err := sim.CreatePool(name, 6, nil); err != nil {
			t.Fatal(err)
		}
		if err := ref.CreatePool(name, 6, nil); err != nil {
			t.Fatal(err)
		}
	}
	var pools, survivorPools []string
	for n, ps := range poolsBy {
		pools = append(pools, ps...)
		if n != crashNode {
			survivorPools = append(survivorPools, ps...)
		}
	}
	propSets := []map[string]predicate.Value{
		{"color": predicate.Str("red")},
		{"color": predicate.Str("blue")},
		{"color": predicate.Str("red"), "size": predicate.Str("big")},
		{"size": predicate.Str("small")},
	}
	instBy := map[string]int{}
	for i, made := 0, 0; instBy["n0"] < 3 || instBy["n1"] < 3 || instBy["n2"] < 3; i++ {
		name := fmt.Sprintf("inst-%d", i)
		own := sim.Ring().Owner(name)
		if instBy[own] >= 3 {
			continue
		}
		instBy[own]++
		props := propSets[made%len(propSets)]
		made++
		if err := sim.CreateInstance(name, props); err != nil {
			t.Fatal(err)
		}
		if err := ref.CreateInstance(name, props); err != nil {
			t.Fatal(err)
		}
	}
	// Dedicated pools for the crash drill: the workload never touches
	// them, so the drill's cross-node grant always reaches its confirm
	// phase regardless of how the random workload loaded the shared pools.
	// The reference never needs them — the drill's grant must end up
	// holding nothing.
	crashA := nameOwnedBy(t, sim.Ring(), "n0", "cpool")
	crashB := nameOwnedBy(t, sim.Ring(), crashNode, "cpool")
	for _, p := range []string{crashA, crashB} {
		if err := sim.CreatePool(p, 2, nil); err != nil {
			t.Fatal(err)
		}
	}
	exprs := []string{`color = "red"`, `color = "blue"`, `size = "big"`, `size = "small"`}
	durs := []time.Duration{2 * time.Minute, 5 * time.Minute, 8 * time.Minute}

	rnd := rand.New(rand.NewSource(seed))
	var pairs []*pair
	outage := false

	// uniqueDur hands every preemptible hold a distinct deadline (kept under
	// the managers' default MaxDuration cap). When deadlines tie, victim
	// ordering falls through to engine-local promise ids, which the cluster
	// and the reference assign differently — a harness artifact, not an
	// engine property, so the workload avoids it.
	durSeq := 0
	uniqueDur := func() time.Duration {
		durSeq++
		return 5*time.Minute + time.Duration(durSeq)*time.Millisecond
	}

	// grantBoth runs one request through both systems and records the pair
	// when both accept; accept/reject must agree.
	grantBoth := func(round int, req core.PromiseRequest, refReq core.PromiseRequest) {
		t.Helper()
		cr, cerr := eng.GrantBatch(bg, "alice", []core.PromiseRequest{req})
		if cerr != nil {
			t.Fatalf("round %d: cluster grant error: %v", round, cerr)
		}
		rr, rerr := ref.GrantBatch(bg, "alice", []core.PromiseRequest{refReq})
		if rerr != nil {
			t.Fatalf("round %d: reference grant error: %v", round, rerr)
		}
		if cr[0].Accepted != rr[0].Accepted {
			t.Fatalf("round %d: accept divergence: cluster=%v (%s) reference=%v (%s) req=%+v",
				round, cr[0].Accepted, cr[0].Reason, rr[0].Accepted, rr[0].Reason, req)
		}
		if cr[0].Accepted {
			pairs = append(pairs, &pair{cid: cr[0].PromiseID, rid: rr[0].PromiseID, parts: partsOf(cr[0].PromiseID)})
		}
	}
	// usable picks a random pair the current phase may touch.
	usable := func(liveOnly bool) *pair {
		idx := rnd.Perm(len(pairs))
		for _, i := range idx {
			p := pairs[i]
			if liveOnly && p.dead {
				continue
			}
			if outage && !p.onSurvivors(crashNode) {
				continue
			}
			return p
		}
		return nil
	}

	for round := 0; round < rounds; round++ {
		if round == crashRound {
			// Kill the node with a confirm reply in flight: the cluster
			// must queue the ambiguity and carry it until remediation. The
			// reference never sees this request — the cluster errored, so
			// equivalence demands it ultimately holds nothing from it.
			sim.Node(crashNode).Port().FailNext("FedConfirm", simulator.FailAfter, 1)
			_, err := eng.GrantBatch(bg, "alice", []core.PromiseRequest{{
				Predicates: []core.Predicate{
					core.Quantity(crashA, 2),
					core.Quantity(crashB, 2),
				},
				Duration: durs[2],
			}})
			if err == nil {
				t.Fatalf("round %d: grant with lost confirm reply reported success", round)
			}
			if eng.PendingCompensations() == 0 {
				t.Fatalf("round %d: lost confirm queued no compensation", round)
			}
			sim.Node(crashNode).Port().Crash()
			outage = true
		}
		if round == healRound {
			sim.Node(crashNode).Port().Restart()
			if err := eng.Reconcile(bg); err != nil {
				t.Fatalf("round %d: Reconcile after restart: %v", round, err)
			}
			if n := eng.PendingCompensations(); n != 0 {
				t.Fatalf("round %d: %d compensations left after Reconcile", round, n)
			}
			outage = false
		}

		switch op := rnd.Intn(100); {
		case op < 40: // quantity grant, possibly cross-node, mixed tiers
			avail := pools
			if outage {
				avail = survivorPools
			}
			prio, preemptible := 0, false
			switch rnd.Intn(6) {
			case 0, 1:
				preemptible = true
			case 2:
				preemptible, prio = true, 1
			case 3:
				prio = 1 + rnd.Intn(2)
			}
			n := 1 + rnd.Intn(2)
			if preemptible {
				// Single-predicate spot holds: a cross-node hold becomes a
				// composite on the cluster but one promise on the reference,
				// and composite victims have no counterpart to agree with.
				n = 1
			}
			picked := rnd.Perm(len(avail))[:n]
			var preds []core.Predicate
			for _, i := range picked {
				preds = append(preds, core.Quantity(avail[i], int64(1+rnd.Intn(3))))
			}
			dur := durs[rnd.Intn(len(durs))]
			if preemptible {
				dur = uniqueDur()
			}
			req := core.PromiseRequest{Predicates: preds, Duration: dur, Priority: prio, Preemptible: preemptible}
			grantBoth(round, req, req)
		case op < 55: // property grant (cluster-wide matching)
			if outage {
				continue
			}
			req := core.PromiseRequest{
				Predicates: []core.Predicate{core.MustProperty(exprs[rnd.Intn(len(exprs))])},
				Duration:   durs[rnd.Intn(len(durs))],
			}
			grantBoth(round, req, req)
		case op < 63: // modify: atomic release-and-regrant
			if outage {
				continue
			}
			p := usable(true)
			if p == nil {
				continue
			}
			pool := pools[rnd.Intn(len(pools))]
			req := core.PromiseRequest{
				Predicates: []core.Predicate{core.Quantity(pool, int64(1+rnd.Intn(2)))},
				Duration:   durs[rnd.Intn(len(durs))],
				Releases:   []string{p.cid},
			}
			refReq := req
			refReq.Releases = []string{p.rid}
			before := len(pairs)
			grantBoth(round, req, refReq)
			if len(pairs) > before { // accepted: the old promise is gone
				p.dead = true
			}
		case op < 80: // release
			p := usable(true)
			if p == nil {
				continue
			}
			cerr := eng.Release(bg, "alice", p.cid)
			rerr := ref.Release(bg, "alice", p.rid)
			if classify(cerr) != classify(rerr) {
				t.Fatalf("round %d: release divergence on %s/%s: cluster=%v reference=%v",
					round, p.cid, p.rid, cerr, rerr)
			}
			p.dead = true
		case op < 95: // check
			p := usable(false)
			if p == nil {
				continue
			}
			cv, cerr := eng.CheckBatch(bg, "alice", []string{p.cid})
			if cerr != nil {
				t.Fatalf("round %d: cluster check error: %v", round, cerr)
			}
			rv, rerr := ref.CheckBatch(bg, "alice", []string{p.rid})
			if rerr != nil {
				t.Fatalf("round %d: reference check error: %v", round, rerr)
			}
			if classify(cv[0]) != classify(rv[0]) {
				t.Fatalf("round %d: check divergence on %s/%s: cluster=%v reference=%v",
					round, p.cid, p.rid, cv[0], rv[0])
			}
		default: // time passes; promises expire identically on both sides
			sim.Advance(time.Duration(30+rnd.Intn(90)) * time.Second)
		}
	}

	// Final sweep: every promise ever granted classifies identically, every
	// pool level matches, both stores audit clean.
	for _, p := range pairs {
		cv, cerr := eng.CheckBatch(bg, "alice", []string{p.cid})
		if cerr != nil {
			t.Fatalf("final check on %s: %v", p.cid, cerr)
		}
		rv, rerr := ref.CheckBatch(bg, "alice", []string{p.rid})
		if rerr != nil {
			t.Fatalf("final check on %s: %v", p.rid, rerr)
		}
		if classify(cv[0]) != classify(rv[0]) {
			t.Fatalf("final divergence on %s/%s: cluster=%v reference=%v", p.cid, p.rid, cv[0], rv[0])
		}
	}
	for _, pool := range pools {
		cl, err := sim.PoolLevel(pool)
		if err != nil {
			t.Fatalf("cluster PoolLevel(%s): %v", pool, err)
		}
		rl, err := ref.PoolLevel(pool)
		if err != nil {
			t.Fatalf("reference PoolLevel(%s): %v", pool, err)
		}
		if cl != rl {
			t.Fatalf("pool %s level divergence: cluster=%d reference=%d", pool, cl, rl)
		}
	}
	crep, err := eng.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Healthy() {
		t.Fatalf("cluster audit unhealthy: %v", crep.Problems)
	}
	rrep, err := ref.Audit()
	if err != nil {
		t.Fatal(err)
	}
	if !rrep.Healthy() {
		t.Fatalf("reference audit unhealthy: %v", rrep.Problems)
	}
	if len(pairs) < 20 {
		t.Fatalf("workload only produced %d accepted grants; the suite is not exercising enough", len(pairs))
	}
}
