package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/simulator"
	"repro/internal/core"
)

// BenchmarkClusterGrant prices the federation tax: a single-pool grant is
// ring-routed straight to its owner (one round trip, no coordinator),
// while a grant spanning two nodes pays the reserve/confirm two-phase
// pipeline. Each iteration grants and releases so capacity stays level.
func BenchmarkClusterGrant(b *testing.B) {
	newBenchSim := func(b *testing.B) (*simulator.Cluster, *cluster.Engine) {
		sim, err := simulator.New(simulator.Config{Nodes: []string{"n0", "n1", "n2"}})
		if err != nil {
			b.Fatal(err)
		}
		eng, err := sim.Engine(core.FirstFitMode)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = eng.Close() })
		return sim, eng
	}
	poolOn := func(b *testing.B, sim *simulator.Cluster, node string) string {
		b.Helper()
		for i := 0; i < 10000; i++ {
			name := fmt.Sprintf("bpool-%d", i)
			if sim.Ring().Owner(name) == node {
				if err := sim.CreatePool(name, 1<<20, nil); err != nil {
					b.Fatal(err)
				}
				return name
			}
		}
		b.Fatalf("no pool name owned by %s", node)
		return ""
	}
	run := func(b *testing.B, eng *cluster.Engine, reqs []core.PromiseRequest) {
		b.Helper()
		resps, err := eng.GrantBatch(bg, "bench", reqs)
		if err != nil {
			b.Fatal(err)
		}
		if !resps[0].Accepted {
			b.Fatalf("bench grant rejected: %s", resps[0].Reason)
		}
		if err := eng.Release(bg, "bench", resps[0].PromiseID); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("direct", func(b *testing.B) {
		sim, eng := newBenchSim(b)
		pool := poolOn(b, sim, "n1")
		req := []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pool, 1)},
			Duration:   time.Minute,
		}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, eng, req)
		}
	})

	b.Run("cross-node", func(b *testing.B) {
		sim, eng := newBenchSim(b)
		pa := poolOn(b, sim, "n0")
		pb := poolOn(b, sim, "n2")
		req := []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity(pa, 1), core.Quantity(pb, 1)},
			Duration:   time.Minute,
		}}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, eng, req)
		}
	})
}
