// Package cluster federates several promised nodes into one promise maker:
// a consistent-hash ring assigns pool and instance ownership to nodes, an
// Engine routes single-node traffic directly (one round trip) and drives
// the reserve/confirm/abort two-phase path for grants that span nodes, and
// a Coordinator health-checks the member set, draining slow nodes by
// migrating their promise slots to successors. The deterministic
// cluster/simulator subpackage runs N in-process nodes behind fake
// transports for failover tests.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when Config leaves it
// zero. More virtual nodes smooth the ownership split at the cost of a
// larger ring.
const DefaultVNodes = 64

// Ring is a consistent-hash assignment of resource names to node ids:
// every member appears at VNodes pseudo-random points on a hash circle,
// and a name belongs to the member whose point follows the name's hash.
// The ring is deterministic given the member list — every engine,
// coordinator and tool that knows the members derives identical ownership
// with no agreement protocol.
type Ring struct {
	members []string
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	// FNV mixes weakly on short, similar strings ("n0#1", "n0#2", …),
	// which clumps ring points and skews ownership badly; a splitmix64
	// finalizer restores avalanche.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over the given member ids. vnodes <= 0 means
// DefaultVNodes.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate ring member %q", sorted[i])
		}
	}
	r := &Ring{members: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Owner returns the member owning the given resource name: the successor
// point of the name's hash on the circle.
func (r *Ring) Owner(name string) string {
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the sorted member ids.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// SuccessorOrder returns the other members in the order a drain should try
// them as migration targets: walking the circle from the member's first
// point, deduplicated. Deterministic given the member list.
func (r *Ring) SuccessorOrder(member string) []string {
	start := hash64(fmt.Sprintf("%s#%d", member, 0))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash > start })
	seen := map[string]bool{member: true}
	var out []string
	for n := 0; n < len(r.points) && len(out) < len(r.members)-1; n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// Share reports the fraction of a large keyspace sample owned by each
// member — a balance diagnostic for tests and status output.
func (r *Ring) Share(samples int) map[string]float64 {
	if samples <= 0 {
		samples = 4096
	}
	counts := make(map[string]int, len(r.members))
	for i := 0; i < samples; i++ {
		counts[r.Owner(fmt.Sprintf("sample-key-%d", i))]++
	}
	out := make(map[string]float64, len(counts))
	for m, c := range counts {
		out[m] = float64(c) / float64(samples)
	}
	return out
}
