package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/predicate"
)

// NodeState is a member's place in the coordinator's health machine.
type NodeState string

const (
	// StateHealthy: answering probes within budget; full traffic.
	StateHealthy NodeState = "healthy"
	// StateSuspect: missed pings, fewer than FailThreshold in a row.
	StateSuspect NodeState = "suspect"
	// StateDown: FailThreshold consecutive missed pings. Re-admitted the
	// moment a ping answers again.
	StateDown NodeState = "down"
	// StateDraining: answering but slow — its canary exceeded CanaryMax
	// SlowThreshold times in a row. The coordinator migrates its movable
	// promise slots to successors; the node returns to healthy once it is
	// drained and fast again.
	StateDraining NodeState = "draining"
)

// coordinatorClient identifies the coordinator's own federated sessions.
const coordinatorClient = "cluster-coordinator"

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Ports are the member nodes to supervise.
	Ports []NodePort
	// VNodes sizes the ring used for successor order (0 = DefaultVNodes).
	VNodes int
	// Clock stamps migration records; nil means the system clock.
	Clock clock.Clock
	// CanaryMax is the grant-latency budget; a canary slower than this
	// counts against the node (0 = 250ms).
	CanaryMax time.Duration
	// FailThreshold is how many consecutive missed pings mark a node down
	// (0 = 3).
	FailThreshold int
	// SlowThreshold is how many consecutive over-budget canaries start a
	// drain (0 = 3).
	SlowThreshold int
	// ReserveTTL bounds the drain's federated sessions (0 = node default).
	ReserveTTL time.Duration
	// Breaker, when non-nil, wraps every port in a per-node circuit
	// breaker (already-wrapped ports are reused — hand the Engine's
	// wrapped ports in to share one breaker per node). Probes pass through
	// an open circuit and their outcomes feed it, so the coordinator's
	// probe rounds drive breaker recovery.
	Breaker *BreakerConfig
}

// MigrationRecord is one slot migration a drain performed.
type MigrationRecord struct {
	Time    time.Time `json:"time"`
	Promise string    `json:"promise"`
	From    string    `json:"from"`
	To      string    `json:"to"`
}

// NodeStatus is one member's health snapshot. Breaker stays positioned
// after State: external scrapers key on the id…state prefix order.
type NodeStatus struct {
	ID         string        `json:"id"`
	URL        string        `json:"url,omitempty"`
	State      NodeState     `json:"state"`
	Breaker    BreakerState  `json:"breaker,omitempty"`
	Fails      int           `json:"fails,omitempty"`
	Slows      int           `json:"slows,omitempty"`
	LastCanary time.Duration `json:"last-canary-ns,omitempty"`
	LastError  string        `json:"last-error,omitempty"`
}

// ClusterStatus is the coordinator's full view, served at /cluster/status.
type ClusterStatus struct {
	Nodes      []NodeStatus      `json:"nodes"`
	Migrations []MigrationRecord `json:"migrations,omitempty"`
}

type nodeHealth struct {
	state      NodeState
	fails      int
	slows      int
	lastCanary time.Duration
	lastErr    string
}

// Coordinator health-checks the member set and remediates: nodes that stop
// answering are marked down (and re-admitted when they answer again);
// nodes that answer slowly are drained — their movable promise slots
// migrate to ring successors so held promises survive the sick node.
// Grants never pass through the coordinator; it is control plane only.
type Coordinator struct {
	ring  *Ring
	order []string
	ports map[string]NodePort
	clk   clock.Clock

	canaryMax     time.Duration
	failThreshold int
	slowThreshold int
	ttl           time.Duration

	mu         sync.Mutex
	health     map[string]*nodeHealth
	migrations []MigrationRecord
}

// NewCoordinator builds a coordinator over the given member ports.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Ports) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one node port")
	}
	ports := make(map[string]NodePort, len(cfg.Ports))
	ids := make([]string, 0, len(cfg.Ports))
	for _, p := range cfg.Ports {
		if _, dup := ports[p.ID()]; dup {
			return nil, fmt.Errorf("cluster: duplicate node id %q", p.ID())
		}
		ports[p.ID()] = p
		ids = append(ids, p.ID())
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System{}
	}
	if cfg.Breaker != nil {
		wrapBreakers(ports, *cfg.Breaker, clk)
	}
	c := &Coordinator{
		ring:          ring,
		order:         ring.Members(),
		ports:         ports,
		clk:           clk,
		canaryMax:     cfg.CanaryMax,
		failThreshold: cfg.FailThreshold,
		slowThreshold: cfg.SlowThreshold,
		ttl:           cfg.ReserveTTL,
		health:        make(map[string]*nodeHealth, len(ids)),
	}
	if c.canaryMax <= 0 {
		c.canaryMax = 250 * time.Millisecond
	}
	if c.failThreshold <= 0 {
		c.failThreshold = 3
	}
	if c.slowThreshold <= 0 {
		c.slowThreshold = 3
	}
	for _, id := range ids {
		c.health[id] = &nodeHealth{state: StateHealthy}
	}
	return c, nil
}

// Tick runs one probe round: every member is pinged and canaried, states
// advance, and any node entering (or stuck in) draining gets a drain pass.
func (c *Coordinator) Tick(ctx context.Context) {
	var toDrain []string
	for _, id := range c.order {
		port := c.ports[id]
		err := port.Ping(ctx)
		c.mu.Lock()
		h := c.health[id]
		if err != nil {
			h.fails++
			h.lastErr = err.Error()
			if h.fails >= c.failThreshold {
				h.state = StateDown
			} else if h.state == StateHealthy {
				h.state = StateSuspect
			}
			c.mu.Unlock()
			continue
		}
		h.fails = 0
		h.lastErr = ""
		if h.state == StateSuspect || h.state == StateDown {
			// Re-admission: the node answers again. Its unmoved promises
			// were never forgotten — they live in the node's own store.
			h.state = StateHealthy
			h.slows = 0
		}
		c.mu.Unlock()

		lat, cerr := port.Canary(ctx)
		c.mu.Lock()
		h.lastCanary = lat
		switch {
		case cerr != nil:
			h.lastErr = cerr.Error()
		case lat > c.canaryMax:
			h.slows++
			if h.slows >= c.slowThreshold && h.state == StateHealthy {
				h.state = StateDraining
			}
		default:
			h.slows = 0
			if h.state == StateDraining {
				h.state = StateHealthy
			}
		}
		if h.state == StateDraining {
			toDrain = append(toDrain, id)
		}
		c.mu.Unlock()
	}
	for _, id := range toDrain {
		if _, err := c.Drain(ctx, id); err != nil {
			c.mu.Lock()
			c.health[id].lastErr = fmt.Sprintf("drain: %v", err)
			c.mu.Unlock()
		}
	}
}

// Run ticks until the context ends. every <= 0 means one second.
func (c *Coordinator) Run(ctx context.Context, every time.Duration) {
	if every <= 0 {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		c.Tick(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// healthyDests returns the drain destinations for src: healthy members in
// ring successor order.
func (c *Coordinator) healthyDests(src string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, id := range c.ring.SuccessorOrder(src) {
		if c.health[id].state == StateHealthy {
			out = append(out, id)
		}
	}
	return out
}

// Drain migrates src's movable promise slots to healthy successors and
// returns how many slots could not move (non-migratable, composite
// members, or nowhere to host them). The held promises keep their ids,
// clients and expiries; watchers on the moving promises observe a
// "migrated" event and the promises stay checkable throughout — first at
// the source's moved directory, then at the destination.
func (c *Coordinator) Drain(ctx context.Context, src string) (stranded int, err error) {
	dests := c.healthyDests(src)
	if len(dests) == 0 {
		return 0, fmt.Errorf("cluster: no healthy destination for draining node %s", src)
	}

	// One federated session on the source exports every slot it holds.
	srcRes, err := c.ports[src].FedReserve(ctx, coordinatorClient, core.FedReserveSpec{
		WantProps: true,
		TTL:       c.ttl,
	})
	if err != nil {
		return 0, fmt.Errorf("cluster: reserve on draining node %s: %w", src, err)
	}
	if srcRes.Reject != nil {
		return 0, fmt.Errorf("cluster: reserve on draining node %s rejected: %s", src, srcRes.Reject.Reason)
	}
	srcAbort := func() { _ = c.ports[src].FedAbort(context.WithoutCancel(ctx), srcRes.SessionID) }
	if srcRes.Context == nil || len(srcRes.Context.Slots) == 0 {
		srcAbort()
		return 0, nil
	}

	var movable []core.FedSlot
	for _, sl := range srcRes.Context.Slots {
		if sl.CrossNode {
			movable = append(movable, sl)
		} else {
			stranded++
		}
	}
	if len(movable) == 0 {
		srcAbort()
		return stranded, nil
	}

	// The movable slots' expressions, deduplicated, become property
	// predicates on the destination reserves: they scope each node's
	// pre-filter and exported candidates without granting anything.
	exprSet := make(map[string]bool)
	var props []core.Predicate
	for _, sl := range movable {
		if exprSet[sl.Expr] {
			continue
		}
		exprSet[sl.Expr] = true
		p, perr := core.Property(sl.Expr)
		if perr != nil {
			srcAbort()
			return stranded, fmt.Errorf("cluster: slot %s expression %q: %v", sl.Key, sl.Expr, perr)
		}
		props = append(props, p)
	}
	predIdx := make([]int, len(props))
	for i := range predIdx {
		predIdx[i] = i
	}

	type destSession struct {
		id    string
		sid   string
		cands []core.FedCandidate
	}
	var sessions []destSession
	abortDests := func() {
		for _, d := range sessions {
			_ = c.ports[d.id].FedAbort(context.WithoutCancel(ctx), d.sid)
		}
	}
	for _, id := range dests {
		res, rerr := c.ports[id].FedReserve(ctx, coordinatorClient, core.FedReserveSpec{
			Predicates: props,
			PredIdx:    predIdx,
			WantProps:  true,
			TTL:        c.ttl,
		})
		if rerr != nil || res.Reject != nil {
			continue // a sick destination just doesn't receive slots
		}
		d := destSession{id: id, sid: res.SessionID}
		if res.Context != nil {
			d.cands = res.Context.Candidates
		}
		sessions = append(sessions, d)
	}
	if len(sessions) == 0 {
		srcAbort()
		return stranded, fmt.Errorf("cluster: no destination reserved for draining node %s", src)
	}

	// Greedy placement in successor order: each slot takes the first free
	// destination instance satisfying its expression.
	exprs := make(map[string]predicate.Expr, len(exprSet))
	for s := range exprSet {
		e, perr := predicate.Parse(s)
		if perr != nil {
			srcAbort()
			abortDests()
			return stranded, fmt.Errorf("cluster: parse %q: %v", s, perr)
		}
		exprs[s] = e
	}
	used := make(map[string]bool)
	specs := make(map[string]*core.FedConfirmSpec)
	srcSpec := &core.FedConfirmSpec{}
	var placed []MigrationRecord
	now := c.clk.Now()
	for _, sl := range movable {
		pid, ok := slotPromiseID(sl.Key)
		if !ok {
			continue
		}
		done := false
		for _, d := range sessions {
			for _, cand := range d.cands {
				if used[cand.Instance] || cand.Tentative {
					continue
				}
				sat, eerr := predicate.Eval(exprs[sl.Expr], candEnv(cand))
				if eerr != nil || !sat {
					continue
				}
				used[cand.Instance] = true
				if specs[d.id] == nil {
					specs[d.id] = &core.FedConfirmSpec{}
				}
				specs[d.id].MigrateIn = append(specs[d.id].MigrateIn, core.FedMigrateIn{
					ID:       pid,
					Client:   sl.Client,
					Expr:     sl.Expr,
					Expires:  sl.Expires,
					Instance: cand.Instance,
					FromNode: src,
				})
				srcSpec.MigrateOut = append(srcSpec.MigrateOut, pid)
				placed = append(placed, MigrationRecord{Time: now, Promise: pid, From: src, To: d.id})
				done = true
				break
			}
			if done {
				break
			}
		}
		if !done {
			stranded++
		}
	}
	if len(srcSpec.MigrateOut) == 0 {
		srcAbort()
		abortDests()
		return stranded, nil
	}

	// Confirm destinations before the source: a failure in between leaves
	// a duplicate (which the unwind releases at the destination), never a
	// lost promise.
	var confirmed []destSession
	for _, d := range sessions {
		if specs[d.id] == nil {
			_ = c.ports[d.id].FedAbort(context.WithoutCancel(ctx), d.sid)
			continue
		}
		if _, cerr := c.ports[d.id].FedConfirm(ctx, d.sid, *specs[d.id]); cerr != nil {
			// This destination's slots stay at the source.
			dropDest(srcSpec, specs[d.id], &placed)
			stranded += len(specs[d.id].MigrateIn)
			continue
		}
		confirmed = append(confirmed, d)
	}
	if len(srcSpec.MigrateOut) == 0 {
		srcAbort()
		return stranded, nil
	}
	if _, cerr := c.ports[src].FedConfirm(ctx, srcRes.SessionID, *srcSpec); cerr != nil {
		// The destinations committed copies the source still owns; release
		// the copies so exactly one holder remains.
		for _, d := range confirmed {
			if specs[d.id] == nil {
				continue
			}
			for _, mi := range specs[d.id].MigrateIn {
				_ = c.ports[d.id].Release(context.WithoutCancel(ctx), mi.Client, mi.ID)
			}
		}
		return stranded + len(srcSpec.MigrateOut), fmt.Errorf("cluster: confirm on draining node %s: %w", src, cerr)
	}

	c.mu.Lock()
	c.migrations = append(c.migrations, placed...)
	c.mu.Unlock()
	return stranded, nil
}

// dropDest removes a failed destination's slots from the source's confirm
// spec and the placement record.
func dropDest(srcSpec *core.FedConfirmSpec, dest *core.FedConfirmSpec, placed *[]MigrationRecord) {
	dropped := make(map[string]bool, len(dest.MigrateIn))
	for _, mi := range dest.MigrateIn {
		dropped[mi.ID] = true
	}
	var out []string
	for _, id := range srcSpec.MigrateOut {
		if !dropped[id] {
			out = append(out, id)
		}
	}
	srcSpec.MigrateOut = out
	var keep []MigrationRecord
	for _, r := range *placed {
		if !dropped[r.Promise] {
			keep = append(keep, r)
		}
	}
	*placed = keep
}

// Status snapshots every member's health and the migration history.
func (c *Coordinator) Status() ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ClusterStatus{Migrations: append([]MigrationRecord(nil), c.migrations...)}
	for _, id := range c.order {
		h := c.health[id]
		ns := NodeStatus{
			ID:         id,
			URL:        c.ports[id].URL(),
			State:      h.state,
			Fails:      h.fails,
			Slows:      h.slows,
			LastCanary: h.lastCanary,
			LastError:  h.lastErr,
		}
		if bp, ok := c.ports[id].(*BreakerPort); ok {
			ns.Breaker = bp.BreakerState()
		}
		out.Nodes = append(out.Nodes, ns)
	}
	return out
}

// BreakerStates snapshots each supervised node's circuit state. Empty when
// the ports carry no breakers.
func (c *Coordinator) BreakerStates() map[string]BreakerState {
	return breakerStates(c.ports)
}

// SetState forces a member's state (tests and operator tooling).
func (c *Coordinator) SetState(id string, st NodeState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h, ok := c.health[id]; ok {
		h.state = st
	}
}

// StatusEndpoint serves the coordinator's cluster view.
const StatusEndpoint = "/cluster/status"

// Handler returns the coordinator's HTTP surface: GET /cluster/status as a
// text table, or JSON with ?format=json.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+StatusEndpoint, func(w http.ResponseWriter, r *http.Request) {
		st := c.Status()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(st)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var b strings.Builder
		fmt.Fprintf(&b, "%-12s %-28s %-10s %-10s %8s %12s  %s\n", "NODE", "URL", "STATE", "BREAKER", "FAILS", "CANARY", "ERROR")
		for _, n := range st.Nodes {
			canary := "-"
			if n.LastCanary > 0 {
				canary = n.LastCanary.Round(time.Microsecond).String()
			}
			breaker := "-"
			if n.Breaker != "" {
				breaker = string(n.Breaker)
			}
			fmt.Fprintf(&b, "%-12s %-28s %-10s %-10s %8d %12s  %s\n", n.ID, n.URL, n.State, breaker, n.Fails, canary, n.LastError)
		}
		if len(st.Migrations) > 0 {
			fmt.Fprintf(&b, "\nmigrations:\n")
			for _, m := range st.Migrations {
				fmt.Fprintf(&b, "  %s  %s  %s -> %s\n", m.Time.Format(time.RFC3339), m.Promise, m.From, m.To)
			}
		}
		_, _ = w.Write([]byte(b.String()))
	})
	return mux
}

// sortedStates is a test helper: node id -> state.
func (c *Coordinator) sortedStates() map[string]NodeState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]NodeState, len(c.health))
	for id, h := range c.health {
		out[id] = h.state
	}
	return out
}
