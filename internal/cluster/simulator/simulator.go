// Package simulator runs an N-node promised cluster entirely in-process:
// every node is a real core.ShardedManager behind a fake transport port
// with injectable partitions, latencies, crashes and mid-operation
// failures, all driven by one shared fake clock. Failover, drain and
// split-brain scenarios become deterministic table-driven tests — no
// sockets, no sleeps, no flakes.
package simulator

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/predicate"
)

// Config sizes a simulated cluster.
type Config struct {
	// Nodes are the member ids (e.g. "n0", "n1", "n2").
	Nodes []string
	// Shards per node (0 = 4).
	Shards int
	// Mode is each node's property mode.
	Mode core.PropertyMode
	// Start anchors the shared fake clock; zero means 2030-01-01T00:00Z.
	Start time.Time
	// VNodes sizes the ownership ring (0 = cluster.DefaultVNodes).
	VNodes int
}

// Cluster is a set of in-process nodes sharing one fake clock and one
// ownership ring.
type Cluster struct {
	clk   *clock.Fake
	ring  *cluster.Ring
	nodes map[string]*Node
	order []string
}

// Node is one simulated member: a real sharded engine plus its fault port.
type Node struct {
	id   string
	mgr  *core.ShardedManager
	port *Port
}

// New builds a simulated cluster.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("simulator: need at least one node")
	}
	start := cfg.Start
	if start.IsZero() {
		start = time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 4
	}
	ring, err := cluster.NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		clk:   clock.NewFake(start),
		ring:  ring,
		nodes: make(map[string]*Node, len(cfg.Nodes)),
		order: ring.Members(),
	}
	for _, id := range c.order {
		mgr, merr := core.NewSharded(core.ShardedConfig{
			Shards:       shards,
			Clock:        c.clk,
			PropertyMode: cfg.Mode,
			IDNamespace:  id,
		})
		if merr != nil {
			return nil, fmt.Errorf("simulator: node %s: %w", id, merr)
		}
		n := &Node{id: id, mgr: mgr}
		n.port = &Port{node: n, canary: time.Millisecond, calls: make(map[string]int), fails: make(map[string]*failSpec)}
		c.nodes[id] = n
	}
	return c, nil
}

// Clock returns the shared fake clock.
func (c *Cluster) Clock() *clock.Fake { return c.clk }

// Advance moves the shared clock (expiries and fed-session TTLs fire).
func (c *Cluster) Advance(d time.Duration) { c.clk.Advance(d) }

// Ring returns the ownership ring.
func (c *Cluster) Ring() *cluster.Ring { return c.ring }

// Node returns a member by id.
func (c *Cluster) Node(id string) *Node { return c.nodes[id] }

// Ports returns every member's port in ring order.
func (c *Cluster) Ports() []cluster.NodePort {
	out := make([]cluster.NodePort, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.nodes[id].port)
	}
	return out
}

// Engine builds a cluster engine over the simulated ports.
func (c *Cluster) Engine(mode core.PropertyMode) (*cluster.Engine, error) {
	return cluster.New(cluster.Config{Ports: c.Ports(), Clock: c.clk, Mode: mode})
}

// Coordinator builds a coordinator over the simulated ports.
func (c *Cluster) Coordinator(cfg cluster.CoordinatorConfig) (*cluster.Coordinator, error) {
	cfg.Ports = c.Ports()
	cfg.Clock = c.clk
	return cluster.NewCoordinator(cfg)
}

// CreatePool seeds a pool on its ring owner.
func (c *Cluster) CreatePool(id string, onHand int64, props map[string]predicate.Value) error {
	return c.nodes[c.ring.Owner(id)].mgr.CreatePool(id, onHand, props)
}

// CreateInstance seeds a named instance on its ring owner.
func (c *Cluster) CreateInstance(id string, props map[string]predicate.Value) error {
	return c.nodes[c.ring.Owner(id)].mgr.CreateInstance(id, props)
}

// PoolLevel reads a pool's level at its ring owner.
func (c *Cluster) PoolLevel(pool string) (int64, error) {
	return c.nodes[c.ring.Owner(pool)].mgr.PoolLevel(pool)
}

// Manager exposes a node's engine directly (seeding, assertions).
func (n *Node) Manager() *core.ShardedManager { return n.mgr }

// Port returns the node's fault port.
func (n *Node) Port() *Port { return n.port }

// ID returns the node id.
func (n *Node) ID() string { return n.id }

// FailMode says when an injected failure strikes relative to the real
// operation.
type FailMode int

const (
	// FailBefore returns the error without running the operation — the
	// request never reached the node (a partition mid-pipeline).
	FailBefore FailMode = iota
	// FailAfter runs the operation, then returns an error anyway — the
	// node did the work but the reply was lost (a crash mid-confirm).
	FailAfter
)

type failSpec struct {
	mode FailMode
	n    int
}

// Port implements cluster.NodePort in-process with injectable faults.
type Port struct {
	node *Node

	mu          sync.Mutex
	crashed     bool
	partitioned bool
	canary      time.Duration
	calls       map[string]int
	fails       map[string]*failSpec
}

// errUnreachable is what every operation returns while the node is
// crashed or partitioned away.
func (p *Port) errUnreachable() error {
	return fmt.Errorf("simulator: node %s unreachable", p.node.id)
}

// gate counts the call, enforces reachability, and applies any injected
// failure. run is the real operation; it executes unless a FailBefore
// strikes, and its result is discarded when a FailAfter strikes. A
// "sim/<op>" failpoint (e.g. "sim/FedConfirm=error(dropped)") strikes
// before the operation, like FailBefore, letting chaos scripts drive the
// same faults from outside the test process.
func (p *Port) gate(op string, run func() error) error {
	if err := failpoint.Eval("sim/" + op); err != nil {
		p.mu.Lock()
		p.calls[op]++
		p.mu.Unlock()
		return err
	}
	p.mu.Lock()
	p.calls[op]++
	if p.crashed || p.partitioned {
		p.mu.Unlock()
		return p.errUnreachable()
	}
	var strike *failSpec
	if f := p.fails[op]; f != nil && f.n > 0 {
		f.n--
		strike = f
	}
	p.mu.Unlock()
	if strike != nil && strike.mode == FailBefore {
		return fmt.Errorf("simulator: injected failure before %s on %s", op, p.node.id)
	}
	err := run()
	if strike != nil && strike.mode == FailAfter {
		return fmt.Errorf("simulator: injected failure after %s on %s (operation applied, reply lost)", op, p.node.id)
	}
	return err
}

// Crash kills the node: in-flight federated sessions abort (their
// reservations were in memory) while committed promises survive in the
// store, and every subsequent call fails until Restart — the durable-node
// model.
func (p *Port) Crash() {
	p.mu.Lock()
	p.crashed = true
	p.mu.Unlock()
	p.node.mgr.FedAbortAll()
}

// Restart brings a crashed node back with its committed state intact.
func (p *Port) Restart() {
	p.mu.Lock()
	p.crashed = false
	p.mu.Unlock()
}

// Partition cuts (or heals) the node's network without killing it.
func (p *Port) Partition(cut bool) {
	p.mu.Lock()
	p.partitioned = cut
	p.mu.Unlock()
}

// SetCanaryLatency injects the latency Canary reports — how a test makes
// a node "slow" without sleeping.
func (p *Port) SetCanaryLatency(d time.Duration) {
	p.mu.Lock()
	p.canary = d
	p.mu.Unlock()
}

// FailNext injects failures: the next n calls of op fail with the given
// mode. Op names match the NodePort method names ("FedConfirm", ...).
func (p *Port) FailNext(op string, mode FailMode, n int) {
	p.mu.Lock()
	p.fails[op] = &failSpec{mode: mode, n: n}
	p.mu.Unlock()
}

// Calls reports how many times op was attempted (reachable or not).
func (p *Port) Calls(op string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.calls[op]
}

// ID implements cluster.NodePort.
func (p *Port) ID() string { return p.node.id }

// URL implements cluster.NodePort; simulated nodes are not addressable.
func (p *Port) URL() string { return "" }

// Execute implements cluster.NodePort.
func (p *Port) Execute(ctx context.Context, req core.Request) (*core.Response, error) {
	var out *core.Response
	err := p.gate("Execute", func() (err error) {
		out, err = p.node.mgr.Execute(ctx, req)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GrantBatch implements cluster.NodePort.
func (p *Port) GrantBatch(ctx context.Context, client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error) {
	var out []core.PromiseResponse
	err := p.gate("GrantBatch", func() (err error) {
		out, err = p.node.mgr.GrantBatch(ctx, client, reqs)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CheckBatch implements cluster.NodePort.
func (p *Port) CheckBatch(ctx context.Context, client string, ids []string) ([]error, error) {
	var out []error
	err := p.gate("CheckBatch", func() (err error) {
		out, err = p.node.mgr.CheckBatch(ctx, client, ids)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Release implements cluster.NodePort.
func (p *Port) Release(ctx context.Context, client string, ids ...string) error {
	return p.gate("Release", func() error {
		return p.node.mgr.Release(ctx, client, ids...)
	})
}

// Watch implements cluster.NodePort. The subscription survives later
// crashes of the port (an established stream is the engine's, not the
// transport's); tests that want a severed stream cancel the context.
func (p *Port) Watch(ctx context.Context, opts core.WatchOptions) (<-chan core.Event, error) {
	var out <-chan core.Event
	err := p.gate("Watch", func() (err error) {
		out, err = p.node.mgr.Watch(ctx, opts)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stats implements cluster.NodePort.
func (p *Port) Stats() core.Stats {
	p.mu.Lock()
	dead := p.crashed || p.partitioned
	p.mu.Unlock()
	if dead {
		return core.Stats{}
	}
	return p.node.mgr.Stats()
}

// Audit implements cluster.NodePort.
func (p *Port) Audit() (*core.AuditReport, error) {
	var out *core.AuditReport
	err := p.gate("Audit", func() (err error) {
		out, err = p.node.mgr.Audit()
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FedReserve implements cluster.NodePort.
func (p *Port) FedReserve(ctx context.Context, client string, spec core.FedReserveSpec) (*core.FedReserveResult, error) {
	var out *core.FedReserveResult
	err := p.gate("FedReserve", func() (err error) {
		out, err = p.node.mgr.FedReserve(ctx, client, spec)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FedConfirm implements cluster.NodePort.
func (p *Port) FedConfirm(ctx context.Context, sessionID string, spec core.FedConfirmSpec) ([]core.GrantedPart, error) {
	var out []core.GrantedPart
	err := p.gate("FedConfirm", func() (err error) {
		out, err = p.node.mgr.FedConfirm(ctx, sessionID, spec)
		return
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FedAbort implements cluster.NodePort.
func (p *Port) FedAbort(ctx context.Context, sessionID string) error {
	return p.gate("FedAbort", func() error {
		p.node.mgr.FedAbort(sessionID)
		return nil
	})
}

// FedSummary implements cluster.NodePort.
func (p *Port) FedSummary(ctx context.Context) (core.NodeSummary, error) {
	var out core.NodeSummary
	err := p.gate("FedSummary", func() error {
		out = p.node.mgr.FedSummary()
		return nil
	})
	return out, err
}

// Ping implements cluster.NodePort.
func (p *Port) Ping(ctx context.Context) error {
	return p.gate("Ping", func() error { return nil })
}

// Canary implements cluster.NodePort: the injected latency, never a sleep.
func (p *Port) Canary(ctx context.Context) (time.Duration, error) {
	p.mu.Lock()
	lat := p.canary
	p.mu.Unlock()
	err := p.gate("Canary", func() error { return nil })
	if err != nil {
		return 0, err
	}
	return lat, nil
}

// Close implements cluster.NodePort.
func (p *Port) Close() error {
	return p.node.mgr.Close()
}

var _ cluster.NodePort = (*Port)(nil)
