package cluster

import (
	"context"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/transport"
)

// NodePort is everything the cluster needs from one member node: the
// ordinary engine surface for routed traffic, the federation verbs for
// cross-node grants and drains, and the health probes the coordinator
// runs. transport.Client provides all of it over HTTP (see HTTPPort); the
// simulator provides an in-process implementation with injectable faults.
type NodePort interface {
	// ID is the node's cluster identity — also its promise-id namespace
	// (ids minted by the node start "<id>!").
	ID() string
	// URL locates the node for tools; "" when the node is not addressable
	// (simulated ports).
	URL() string

	Execute(ctx context.Context, req core.Request) (*core.Response, error)
	GrantBatch(ctx context.Context, client string, reqs []core.PromiseRequest) ([]core.PromiseResponse, error)
	CheckBatch(ctx context.Context, client string, ids []string) ([]error, error)
	Release(ctx context.Context, client string, ids ...string) error
	Watch(ctx context.Context, opts core.WatchOptions) (<-chan core.Event, error)
	Stats() core.Stats
	Audit() (*core.AuditReport, error)

	FedReserve(ctx context.Context, client string, spec core.FedReserveSpec) (*core.FedReserveResult, error)
	FedConfirm(ctx context.Context, sessionID string, spec core.FedConfirmSpec) ([]core.GrantedPart, error)
	FedAbort(ctx context.Context, sessionID string) error
	FedSummary(ctx context.Context) (core.NodeSummary, error)

	// Ping is the liveness probe: nil means the node answered.
	Ping(ctx context.Context) error
	// Canary measures one cheap end-to-end engine operation and returns
	// its latency — the coordinator's slowness signal. Simulated ports
	// report an injected latency, keeping tests deterministic.
	Canary(ctx context.Context) (time.Duration, error)

	Close() error
}

// HTTPPort adapts a transport.Client into a NodePort.
type HTTPPort struct {
	*transport.Client
	id string
}

// NewHTTPPort returns a port for the node with the given cluster id at
// baseURL. client is the default promise-client identity; hc may be nil.
func NewHTTPPort(id, baseURL, client string, hc *http.Client) *HTTPPort {
	return &HTTPPort{
		Client: &transport.Client{BaseURL: baseURL, Client: client, HTTP: hc},
		id:     id,
	}
}

// ID implements NodePort.
func (p *HTTPPort) ID() string { return p.id }

// URL implements NodePort.
func (p *HTTPPort) URL() string { return p.Client.BaseURL }

// Ping implements NodePort: a stats scrape answers iff the daemon serves.
func (p *HTTPPort) Ping(ctx context.Context) error {
	_, err := p.Client.FetchStats(ctx)
	return err
}

// Canary implements NodePort: it times a single-id CheckBatch, which runs
// the full envelope path through the node's engine locks — a grant-latency
// proxy that never mutates state.
func (p *HTTPPort) Canary(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	if _, err := p.Client.CheckBatch(ctx, "cluster-canary", []string{"canary-probe"}); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
