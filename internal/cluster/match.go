package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/predicate"
	"repro/internal/resource"
)

// This file is the cluster-side generalisation of core's globalmatch.go:
// the same joint bipartite problem — existing property slots plus the
// request's floating predicates against candidate instances — solved one
// level up, at (node, shard) granularity over the FedContexts the member
// nodes exported at reserve time.
//
// The pass structure mirrors the shard-level solver exactly:
//
//   - Pass 1 pins every existing slot to its exact (node, shard) home.
//     When it saturates, nothing moves and each node's plan degenerates to
//     pinned grants.
//   - Pass 2 relaxes by migratability: a Migratable slot may re-home to
//     any shard of its own node (the node converts the reallocation into
//     an internal migration itself), and a CrossNode slot — a plain
//     single-predicate property sub-promise, not a composite member — may
//     re-home to any node, travelling by MigrateOut/MigrateIn with its
//     promise id, client and expiry intact.
//
// Both passes seed with the current assignments, so only new predicates
// and the slots they displace pay for augmenting-path searches.

// floatRef is one new left vertex: a property predicate free to land
// anywhere, or a deferred named predicate bound to exactly one instance.
type floatRef struct {
	idx   int // position in the request's predicate list
	named bool
}

// nodeContext pairs a member's id with the match state it exported.
type nodeContext struct {
	node string
	fc   *core.FedContext
}

// slotMove re-homes one existing slot across nodes.
type slotMove struct {
	from, to string
	slot     core.FedSlot
	inst     string
}

// clusterPlan is a solved match, split per node into the confirm-spec
// pieces the engine sends.
type clusterPlan struct {
	realloc map[string][]core.FedRealloc
	moves   []slotMove
	pinned  map[string][]core.FedPinned
}

// slotPromiseID extracts the promise id from a slot key ("<promise>#<idx>").
func slotPromiseID(key string) (string, bool) {
	i := strings.LastIndexByte(key, '#')
	if i <= 0 {
		return "", false
	}
	return key[:i], true
}

// candEnv rebuilds the evaluation environment of an exported candidate —
// the same id/status builtins plus properties a local matcher sees.
func candEnv(c core.FedCandidate) predicate.Env {
	status := resource.Available
	if c.Tentative {
		status = resource.Promised
	}
	inst := resource.Instance{ID: c.Instance, Status: status, Props: c.Props}
	return inst.Env()
}

// solveClusterMatch solves the joint property match over every exported
// context. preds is the request's full predicate list; floating indexes
// into it. Returns ok=false when the floating predicates are not jointly
// satisfiable with the outstanding promises.
func solveClusterMatch(ctxs []nodeContext, preds []core.Predicate, floating []floatRef, mode core.PropertyMode) (*clusterPlan, bool, error) {
	type gSlot struct {
		node string
		slot core.FedSlot
	}
	type gCand struct {
		node string
		cand core.FedCandidate
	}
	var slots []gSlot
	var cands []gCand
	candIdx := make(map[string]int) // instance id -> right index (globally unique)
	exprs := make(map[string]predicate.Expr)
	for _, nc := range ctxs {
		if nc.fc == nil {
			continue
		}
		for _, sl := range nc.fc.Slots {
			if _, ok := exprs[sl.Expr]; !ok {
				e, err := predicate.Parse(sl.Expr)
				if err != nil {
					return nil, false, fmt.Errorf("cluster: node %s slot %s: bad expression %q: %v", nc.node, sl.Key, sl.Expr, err)
				}
				exprs[sl.Expr] = e
			}
			slots = append(slots, gSlot{node: nc.node, slot: sl})
		}
		for _, c := range nc.fc.Candidates {
			if _, dup := candIdx[c.Instance]; dup {
				continue // two nodes exporting one instance id: first wins
			}
			candIdx[c.Instance] = len(cands)
			cands = append(cands, gCand{node: nc.node, cand: c})
		}
	}

	plan := &clusterPlan{
		realloc: make(map[string][]core.FedRealloc),
		pinned:  make(map[string][]core.FedPinned),
	}
	pin := func(node string, f floatRef, inst string) {
		plan.pinned[node] = append(plan.pinned[node], core.FedPinned{
			Predicate: preds[f.idx],
			PredIdx:   f.idx,
			Instance:  inst,
		})
	}

	if mode == core.FirstFitMode {
		// Greedy ablation: each new predicate binds to the first free
		// satisfying instance in node, shard, id order; existing
		// allocations never move (first-fit never displaces, so deferred
		// named predicates cannot occur).
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := cands[order[a]], cands[order[b]]
			if ca.node != cb.node {
				return ca.node < cb.node
			}
			if ca.cand.Shard != cb.cand.Shard {
				return ca.cand.Shard < cb.cand.Shard
			}
			return ca.cand.Instance < cb.cand.Instance
		})
		used := make(map[int]bool)
		for _, f := range floating {
			found := -1
			for _, j := range order {
				if used[j] || cands[j].cand.Tentative {
					continue
				}
				ok, err := predicate.Eval(preds[f.idx].Expr, candEnv(cands[j].cand))
				if err != nil || !ok {
					continue
				}
				found = j
				break
			}
			if found < 0 {
				return nil, false, nil
			}
			used[found] = true
			pin(cands[found].node, f, cands[found].cand.Instance)
		}
		return plan, true, nil
	}

	nExist := len(slots)
	edge := func(l, r int) bool {
		if l >= nExist {
			f := floating[l-nExist]
			if f.named {
				return cands[r].cand.Instance == preds[f.idx].Instance
			}
			ok, err := predicate.Eval(preds[f.idx].Expr, candEnv(cands[r].cand))
			return err == nil && ok
		}
		ok, err := predicate.Eval(exprs[slots[l].slot.Expr], candEnv(cands[r].cand))
		return err == nil && ok
	}
	seed := make([]int, nExist+len(floating))
	for i := range seed {
		seed[i] = matching.Unmatched
	}
	for i, sl := range slots {
		if j, ok := candIdx[sl.slot.Assigned]; ok && sl.slot.Assigned != "" {
			seed[i] = j
		}
	}

	// Pass 1: existing slots pinned to their exact (node, shard) home.
	pinnedM := matching.NewIncremental(nExist+len(floating), len(cands), func(l, r int) bool {
		if l < nExist && (slots[l].node != cands[r].node || slots[l].slot.Shard != cands[r].cand.Shard) {
			return false
		}
		return edge(l, r)
	})
	assign, ok := pinnedM.Solve(seed)
	if !ok {
		// Pass 2: migratable slots roam their node; cross-node slots roam
		// the cluster. This is the single-store feasibility — boundaries
		// stop constraining the match.
		free := matching.NewIncremental(nExist+len(floating), len(cands), func(l, r int) bool {
			if l < nExist {
				sl, c := slots[l], cands[r]
				switch {
				case !sl.slot.Migratable:
					if sl.node != c.node || sl.slot.Shard != c.cand.Shard {
						return false
					}
				case !sl.slot.CrossNode:
					if sl.node != c.node {
						return false
					}
				}
			}
			return edge(l, r)
		})
		if assign, ok = free.Solve(seed); !ok {
			return nil, false, nil
		}
	}

	for i, sl := range slots {
		c := cands[assign[i]]
		newInst := c.cand.Instance
		if newInst == sl.slot.Assigned {
			continue
		}
		if c.node == sl.node {
			plan.realloc[sl.node] = append(plan.realloc[sl.node], core.FedRealloc{Slot: sl.slot.Key, Instance: newInst})
			continue
		}
		plan.moves = append(plan.moves, slotMove{from: sl.node, to: c.node, slot: sl.slot, inst: newInst})
	}
	for k, f := range floating {
		c := cands[assign[nExist+k]]
		pin(c.node, f, c.cand.Instance)
	}
	return plan, true, nil
}
