// GPU fleet: the spot-capacity subsystem end to end. A fleet of GPUs with
// class/region properties serves two tiers of work — preemptible spot
// batch jobs at the default tier, and on-demand training jobs at a higher
// priority that may displace them. A fleet controller follows the engine's
// preempted events and re-acquires capacity for displaced batch jobs,
// falling back across GPU classes and regions. Everything runs on a fake
// clock, so the run is instant and the tier choreography — who displaces
// whom, and when capacity returns — is deterministic.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/promises"
)

// inspector is the operator-facing introspection surface of the local
// engines (clients hold ids, the controller looks inside).
type inspector interface {
	PromiseInfo(id string) (promises.Promise, error)
	ActivePromises() ([]promises.Promise, error)
}

func main() {
	ctx := context.Background()
	fake := promises.FakeClock()
	eng, err := promises.Open(
		promises.WithPropertyMode(promises.MatchingMode),
		promises.WithClock(fake),
		promises.WithMaxDuration(4*time.Hour),
	)
	if err != nil {
		log.Fatal(err)
	}
	seedFleet(eng)
	ins := eng.(inspector)

	request := func(client, expr string, prio int, spot bool, dur time.Duration) promises.PromiseResponse {
		resp, err := eng.Execute(ctx, promises.Request{
			Client: client,
			PromiseRequests: []promises.PromiseRequest{{
				Predicates:  []promises.Predicate{promises.MustProperty(expr)},
				Duration:    dur,
				Priority:    prio,
				Preemptible: spot,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		return resp.Promises[0]
	}
	gpuOf := func(pr promises.PromiseResponse) string {
		info, err := ins.PromiseInfo(pr.PromiseID)
		if err != nil {
			log.Fatal(err)
		}
		return info.Assigned[0]
	}

	// Spot batch jobs soak up the whole fleet at the preemptible tier.
	// Staggered durations keep every deadline distinct, so the preemption
	// planner's oldest-deadline-first victim order is fully determined.
	fmt.Println("spot batch jobs fill the fleet:")
	jobs := map[string]promises.PromiseResponse{} // job name -> current hold
	wants := []struct{ name, expr string }{
		{"job-encode-1", `class = "h100"`},
		{"job-encode-2", `class = "h100"`},
		{"job-index-1", `class = "a100"`},
		{"job-index-2", `class = "a100"`},
		{"job-scrub-eu", `region = "eu"`},
		{"job-scrub-any", `class = "a100" or class = "h100"`},
	}
	for i, w := range wants {
		pr := request("batch", w.expr, 0, true, time.Duration(10+i)*time.Minute)
		if !pr.Accepted {
			log.Fatalf("%s rejected: %s", w.name, pr.Reason)
		}
		jobs[w.name] = pr
		fmt.Printf("  %-13s %-35s -> %s (spot, expires %s)\n", w.name, w.expr, gpuOf(pr), pr.Expires.Format(time.Kitchen))
	}

	// The fleet controller follows preempted events for the batch tenant.
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	events, err := eng.Watch(watchCtx, promises.WatchOptions{
		Client: "batch",
		Types:  []promises.EventType{promises.EventPreempted},
	})
	if err != nil {
		log.Fatal(err)
	}

	// An on-demand training job arrives at priority 1 needing an H100. The
	// fleet is full, but every hold is spot: the planner revokes the
	// earliest-expiring hold that frees an H100 — and only that one.
	fmt.Println("\non-demand training job arrives (priority 1, h100):")
	train := request("trainer", `class = "h100"`, 1, false, time.Hour)
	if !train.Accepted {
		log.Fatalf("training job rejected over a spot-held fleet: %s", train.Reason)
	}
	fmt.Printf("  trainer granted %s -> %s\n", train.PromiseID, gpuOf(train))

	// The controller reacts: identify the displaced job and re-acquire spot
	// capacity for it, falling back across classes and regions. The h100s
	// are taken (one by the trainer, one by a surviving spot hold), so the
	// fallback chain lands on whatever the matcher can still free up.
	ev := <-events
	victim := ""
	for name, pr := range jobs {
		if pr.PromiseID == ev.PromiseID {
			victim = name
		}
	}
	fmt.Printf("\ncontroller: %s preempted by %s (tier %d); re-acquiring\n", victim, ev.By, ev.Priority)
	delete(jobs, victim)
	fallbacks := []string{`class = "h100"`, `class = "a100"`, `region = "eu" or region = "us"`}
	reacquired := false
	for _, expr := range fallbacks {
		pr := request("batch", expr, 0, true, 30*time.Minute)
		if pr.Accepted {
			fmt.Printf("  re-acquired %-28s -> %s (spot)\n", expr, gpuOf(pr))
			jobs[victim] = pr
			reacquired = true
			break
		}
		fmt.Printf("  fallback %-31s rejected (%s)\n", expr, pr.Reason)
	}
	if reacquired {
		log.Fatal("fleet is fully held; no fallback should have succeeded yet")
	}
	fmt.Println("  fleet saturated — controller waits for capacity")

	// Capacity returns as spot deadlines lapse. The controller retries on
	// the freed GPU; the fleet is whole again.
	fake.Advance(11 * time.Minute) // job-encode-1's deadline (or its successor's)
	for _, expr := range fallbacks {
		pr := request("batch", expr, 0, true, 30*time.Minute)
		if pr.Accepted {
			fmt.Printf("\ncapacity lapsed; controller re-acquired %s -> %s\n", expr, gpuOf(pr))
			jobs[victim] = pr
			reacquired = true
			break
		}
	}
	if !reacquired {
		log.Fatal("controller could not re-acquire after spot deadlines lapsed")
	}

	// Tier discipline held throughout: the trainer's on-demand promise was
	// never at risk — same-or-lower tiers cannot displace it.
	if errs, err := eng.CheckBatch(ctx, "trainer", []string{train.PromiseID}); err != nil || errs[0] != nil {
		log.Fatalf("training promise disturbed: %v %v", err, errs)
	}
	rep, err := eng.Audit()
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Healthy() {
		log.Fatalf("audit: %v", rep.Problems)
	}
	active, _ := ins.ActivePromises()
	fmt.Printf("\ntraining job intact; audit clean; %d promises active\n", len(active))
}

func seedFleet(eng promises.Engine) {
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	gpus := []struct {
		id     string
		class  string
		region string
	}{
		{"gpu-h100-us-0", "h100", "us"},
		{"gpu-h100-us-1", "h100", "us"},
		{"gpu-a100-us-0", "a100", "us"},
		{"gpu-a100-us-1", "a100", "us"},
		{"gpu-a100-eu-0", "a100", "eu"},
		{"gpu-a100-eu-1", "a100", "eu"},
	}
	for _, g := range gpus {
		props := map[string]promises.Value{
			"class":  promises.Str(g.class),
			"region": promises.Str(g.region),
		}
		if err := seeder.CreateInstance(g.id, props); err != nil {
			log.Fatal(err)
		}
	}
}
