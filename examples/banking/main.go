// Banking: the paper's account examples — escrow-style promises over an
// anonymous balance (§3.1: "if a promise is made that a client application
// will be able to withdraw $500 from an account, the bank is not obliged to
// set aside five specific $100 bills"), the §9 observation that two
// promises for balance>=100 and balance>=50 jointly require 150, and the §4
// atomic upgrade/downgrade of a payment guarantee.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/promises"
)

func main() {
	ctx := context.Background()
	eng, err := promises.Open()
	if err != nil {
		log.Fatal(err)
	}
	// Alice's account: $300 (cents omitted for readability).
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	if err := seeder.CreatePool("acct-alice", 300, nil); err != nil {
		log.Fatal(err)
	}

	request := func(client string, amount int64) promises.PromiseResponse {
		// Predicates can arrive in the general expression syntax of §3;
		// FromExpr maps "balance >= N" onto the escrow machinery.
		pred, err := promises.FromExpr("acct-alice", fmt.Sprintf("balance >= %d", amount))
		if err != nil {
			log.Fatal(err)
		}
		resp, err := eng.Execute(ctx, promises.Request{
			Client: client,
			PromiseRequests: []promises.PromiseRequest{{
				Predicates: []promises.Predicate{pred},
				Duration:   time.Minute,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		return resp.Promises[0]
	}

	// §9: "two promises for 'balance>100' and 'balance>50' imply that the
	// balance must be kept over 150" — unlike integrity constraints, the
	// reservations are disjoint.
	shopA := request("shop-a", 100)
	shopB := request("shop-b", 50)
	fmt.Printf("shop-a promised $100: %v; shop-b promised $50: %v\n", shopA.Accepted, shopB.Accepted)
	probe := request("shop-c", 200) // 300 - 150 = 150 free; $200 must fail
	fmt.Printf("shop-c asks $200 with $150 free: accepted=%v (%s)\n", probe.Accepted, probe.Reason)

	// §4 third requirement: shop-a's anticipated charge grows to $200 — an
	// atomic upgrade that hands back the $100 promise only if the new one
	// is granted.
	upPred, _ := promises.FromExpr("acct-alice", "balance >= 200")
	resp, err := eng.Execute(ctx, promises.Request{
		Client: "shop-a",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{upPred},
			Duration:   time.Minute,
			Releases:   []string{shopA.PromiseID},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	upgrade := resp.Promises[0]
	fmt.Printf("shop-a atomic upgrade $100->$200: accepted=%v\n", upgrade.Accepted)

	// Alice spends her unpromised money; the post-action check allows it
	// because $50 remains free (300 - 200 - 50 = 50).
	withdraw := func(amount int64) error {
		resp, err := eng.Execute(ctx, promises.Request{
			Client: "alice",
			Action: func(ac *promises.ActionContext) (any, error) {
				_, err := ac.Resources.AdjustPool(ac.Tx, "acct-alice", -amount)
				return nil, err
			},
		})
		if err != nil {
			return err
		}
		return resp.ActionErr
	}
	if err := withdraw(50); err != nil {
		log.Fatalf("withdrawing free $50: %v", err)
	}
	fmt.Println("alice withdrew her unpromised $50")

	// Withdrawing more would violate the outstanding promises: the action
	// is rolled back and reported, not silently allowed.
	err = withdraw(10)
	fmt.Printf("alice tries another $10: %v (violation=%v)\n",
		err, errors.Is(err, promises.ErrPromiseViolated))

	// shop-a charges the promised $200, releasing its promise atomically.
	resp, err = eng.Execute(ctx, promises.Request{
		Client: "shop-a",
		Env:    []promises.EnvEntry{{PromiseID: upgrade.PromiseID, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			bal, err := ac.Resources.AdjustPool(ac.Tx, "acct-alice", -200)
			return bal, err
		},
	})
	if err != nil || resp.ActionErr != nil {
		log.Fatalf("charge failed: %v %v", err, resp.ActionErr)
	}
	fmt.Printf("shop-a charged $200; balance now $%v (shop-b's $50 still protected)\n", resp.ActionResult)
}
