// Retail: the full §7 merchant scenario as a long-running workflow —
// Figure 1's accept and reject paths, the next-day-shipping promise from
// the second §7 example, and a §5 delegated backorder to a distributor.
//
// The distributor hangs off the merchant through an EngineSupplier: swap
// the in-process distributor engine for promises.Open(WithRemote(url)) and
// the chain spans processes with zero further changes.
//
// Three orders run through the same order-process workflow definition:
//
//	order-A  5 widgets + shipping  → promised locally, fulfilled
//	order-B  8 widgets + shipping  → stock short, backorder delegated to
//	                                 the distributor and shipped from there
//	order-C  5 widgets + shipping  → rejected: no shipping slots left
//	                                 (Figure 1's "goods unavailable" path)
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/workflow"
	"repro/promises"
)

// inspector is the promise-introspection surface of the local engines.
type inspector interface {
	PromiseInfo(id string) (promises.Promise, error)
}

func main() {
	// The distributor holds deep stock; the merchant carries 10 widgets
	// and 5 next-day shipping slots, delegating widget shortfalls. The
	// distributor resolves the standard actions so backorders can ship
	// through the supplier (the same handlers every daemon serves).
	distributor, err := promises.Open(promises.WithStandardActions())
	if err != nil {
		log.Fatal(err)
	}
	seedPool(distributor, "pink-widgets", 1000)

	supplier := &promises.EngineSupplier{E: distributor, Client: "merchant"}
	merchant, err := promises.Open(promises.WithSuppliers(map[string]promises.Supplier{
		"pink-widgets": supplier,
	}))
	if err != nil {
		log.Fatal(err)
	}
	seedPool(merchant, "pink-widgets", 10)
	seedPool(merchant, "shipping-slots", 2)

	def := orderProcess(merchant, supplier)

	for _, order := range []struct {
		name     string
		qty      int64
		shipping bool
	}{
		{"order-A", 5, true},
		{"order-B", 8, true},
		{"order-C", 5, true},
	} {
		in, err := workflow.NewInstance(def)
		if err != nil {
			log.Fatal(err)
		}
		in.Vars()["order"] = order.name
		in.Vars()["qty"] = order.qty
		in.Vars()["shipping"] = order.shipping
		if err := in.Run(); err != nil {
			fmt.Printf("%s: terminated: %v\n", order.name, err)
			continue
		}
		if in.Status() == workflow.Waiting {
			// Payment arrives later; the promise keeps the stock safe.
			fmt.Printf("%s: waiting for payment (promise held, trace %v)\n", order.name, in.Trace())
			if err := in.Deliver("payment", "card-****42"); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("%s: %v (steps: %v)\n", order.name, in.Status(), in.Trace())
	}

	fmt.Printf("merchant stock after all orders: %d pink widgets\n",
		poolLevel(merchant, "pink-widgets"))
	fmt.Printf("distributor stock: %d (backorder drawn for order-B)\n",
		poolLevel(distributor, "pink-widgets"))
}

// orderProcess is the Figure 1 ordering process as a workflow definition.
func orderProcess(eng promises.Engine, supplier *promises.EngineSupplier) *workflow.Definition {
	ctx := context.Background()
	ins := eng.(inspector)
	return &workflow.Definition{
		Name:  "order-process",
		Start: "reserve",
		Steps: map[string]workflow.StepFunc{
			// "Determine we need N pink widgets … send promise request."
			"reserve": func(c *workflow.Context) (workflow.Transition, error) {
				qty := c.Vars["qty"].(int64)
				preds := []promises.Predicate{promises.Quantity("pink-widgets", qty)}
				if c.Vars["shipping"] == true {
					// The §7 shipping example: "a promise of next day
					// delivery, with the predicate making no assumptions
					// about how this promise will be implemented."
					preds = append(preds, promises.Quantity("shipping-slots", 1))
				}
				resp, err := eng.Execute(ctx, promises.Request{
					Client:          c.Vars["order"].(string),
					PromiseRequests: []promises.PromiseRequest{{Predicates: preds, Duration: time.Minute}},
				})
				if err != nil {
					return workflow.Transition{}, err
				}
				pr := resp.Promises[0]
				if !pr.Accepted {
					// "Terminate order process saying goods unavailable."
					return workflow.Transition{}, fmt.Errorf("goods unavailable: %s", pr.Reason)
				}
				c.Vars["promise"] = pr.PromiseID
				if info, err := ins.PromiseInfo(pr.PromiseID); err == nil && info.DelegatedQty[0] > 0 {
					fmt.Printf("%s: backorder of %d promised by distributor (%s)\n",
						c.Vars["order"], info.DelegatedQty[0], info.DelegatedID[0])
					c.Vars["backorder"] = info.DelegatedQty[0]
					c.Vars["backorder-id"] = info.DelegatedID[0]
				}
				return workflow.WaitFor("payment", "fulfil"), nil
			},
			// "Send 'purchase stock' request … and release promise."
			"fulfil": func(c *workflow.Context) (workflow.Transition, error) {
				qty := c.Vars["qty"].(int64)
				// Ship the backordered portion straight from the
				// distributor first, consuming the upstream promise (§5:
				// "a backorder will be fulfilled on time").
				if back, ok := c.Vars["backorder"].(int64); ok && back > 0 {
					if err := supplier.ConsumePromise(ctx, c.Vars["backorder-id"].(string), back); err != nil {
						return workflow.Transition{}, fmt.Errorf("backorder shipment: %w", err)
					}
					qty -= back
				}
				resp, err := eng.Execute(ctx, promises.Request{
					Client: c.Vars["order"].(string),
					Env:    []promises.EnvEntry{{PromiseID: c.Vars["promise"].(string), Release: true}},
					Action: func(ac *promises.ActionContext) (any, error) {
						// Local stock may cover only part; the delegated
						// remainder ships from the distributor.
						tx := ac.Tx
						p, err := ac.Resources.Pool(tx, "pink-widgets")
						if err != nil {
							return nil, err
						}
						local := qty
						if p.OnHand < local {
							local = p.OnHand
						}
						if local > 0 {
							if _, err := ac.Resources.AdjustPool(tx, "pink-widgets", -local); err != nil {
								return nil, err
							}
						}
						if c.Vars["shipping"] == true {
							if _, err := ac.Resources.AdjustPool(tx, "shipping-slots", -1); err != nil {
								return nil, err
							}
						}
						return local, nil
					},
				})
				if err != nil {
					return workflow.Transition{}, err
				}
				if resp.ActionErr != nil {
					return workflow.Transition{}, resp.ActionErr
				}
				return workflow.Done(), nil
			},
		},
	}
}

func seedPool(eng promises.Engine, pool string, qty int64) {
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	if err := seeder.CreatePool(pool, qty, nil); err != nil {
		log.Fatal(err)
	}
}

func poolLevel(eng promises.Engine, pool string) int64 {
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	level, err := seeder.PoolLevel(pool)
	if err != nil {
		log.Fatal(err)
	}
	return level
}
