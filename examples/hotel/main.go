// Hotel: the §3.3 property-view scenario — concurrent customers with
// overlapping property predicates, the room-512 tentative reallocation of
// §5, the essential-vs-desirable negotiation where a client "may initially
// request a non-smoking room with a view and twin beds, and eventually
// accept a promise for a room with just twin beds" — and the event-driven
// lifecycle: instead of polling CheckBatch, the view customer renews their
// reservation reactively when the engine pushes an expiry-imminent event.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/resource"
	"repro/promises"
)

// inspector is the promise-introspection surface of the local engines,
// beyond the client-facing Engine (clients hold ids, operators look
// inside).
type inspector interface {
	PromiseInfo(id string) (promises.Promise, error)
	ActivePromises() ([]promises.Promise, error)
}

func main() {
	ctx := context.Background()
	// A fake clock makes the expiry choreography below deterministic and
	// instant; the 15s warning window drives reactive renewal.
	fake := promises.FakeClock()
	eng, err := promises.Open(
		promises.WithPropertyMode(promises.MatchingMode),
		promises.WithClock(fake),
		promises.WithExpiryWarning(15*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	seedRooms(eng)
	ins := eng.(inspector)

	request := func(client, expr string) (promises.PromiseResponse, error) {
		resp, err := eng.Execute(ctx, promises.Request{
			Client: client,
			PromiseRequests: []promises.PromiseRequest{{
				Predicates: []promises.Predicate{promises.MustProperty(expr)},
				Duration:   time.Minute,
			}},
		})
		if err != nil {
			return promises.PromiseResponse{}, err
		}
		return resp.Promises[0], nil
	}

	show := func(label string, pr promises.PromiseResponse) {
		if !pr.Accepted {
			fmt.Printf("%-45s REJECTED (%s)\n", label, pr.Reason)
			return
		}
		info, _ := ins.PromiseInfo(pr.PromiseID)
		fmt.Printf("%-45s granted %s -> %s\n", label, pr.PromiseID, info.Assigned[0])
	}

	// §3.3: "one customer may be asking for a room with a view, while
	// another might be requesting any 5th floor room. Room 512 could be a
	// suitable available resource that would allow the promise manager to
	// grant either of these requests, but the manager has to ensure that
	// the same room is not allocated to both."
	view, err := request("customer-view", "view = true")
	if err != nil {
		log.Fatal(err)
	}
	show(`customer-view: "view = true"`, view)

	fifth, err := request("customer-5th", "floor = 5")
	if err != nil {
		log.Fatal(err)
	}
	show(`customer-5th: "floor = 5"`, fifth)
	vi, _ := ins.PromiseInfo(view.PromiseID)
	fi, _ := ins.PromiseInfo(fifth.PromiseID)
	fmt.Printf("  (tentative allocation moved the view promise to %s so %s could take room-512)\n",
		vi.Assigned[0], fi.Assigned[0])

	// Negotiation: essential twin beds, desirable view + non-smoking —
	// Negotiate drives the alternatives most-desirable first.
	fmt.Println("\ncustomer-picky negotiates:")
	wishes := [][]promises.Predicate{
		{promises.MustProperty(`not smoking and view and beds = "twin"`)},
		{promises.MustProperty(`not smoking and beds = "twin"`)},
		{promises.MustProperty(`beds = "twin"`)},
	}
	neg, err := promises.Negotiate(ctx, eng, "customer-picky", time.Minute, false, wishes...)
	if err != nil {
		log.Fatal(err)
	}
	for i, reason := range neg.Tried {
		fmt.Printf("  wish %d rejected (%s)\n", i, reason)
	}
	if !neg.Accepted() {
		log.Fatal("negotiation failed entirely")
	}
	got := neg.Response
	show(fmt.Sprintf("  accepted wish %d", neg.Attempt), got)

	// Booking: take the assigned room, releasing the promise atomically.
	info, _ := ins.PromiseInfo(got.PromiseID)
	room := info.Assigned[0]
	resp, err := eng.Execute(ctx, promises.Request{
		Client: "customer-picky",
		Env:    []promises.EnvEntry{{PromiseID: got.PromiseID, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			return room, ac.Resources.SetStatus(ac.Tx, room, resource.Taken)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.ActionErr != nil {
		log.Fatalf("booking failed: %v", resp.ActionErr)
	}
	fmt.Printf("\ncustomer-picky booked %v; promise released\n", resp.ActionResult)

	active, _ := ins.ActivePromises()
	fmt.Printf("promises still active: %d (view + 5th-floor customers)\n", len(active))

	// Event-driven renewal: customer-view keeps their reservation alive by
	// reacting to pushed expiry-imminent events — no CheckBatch polling.
	// The engine's expiry heap fires the warning 15s before each deadline
	// and the expiry itself at the deadline, even with no requests running.
	fmt.Println("\ncustomer-view renews reactively on expiry-imminent events:")
	watchCtx, stopWatch := context.WithCancel(ctx)
	defer stopWatch()
	events, err := eng.Watch(watchCtx, promises.WatchOptions{
		Client: "customer-view",
		Types:  []promises.EventType{promises.EventExpiryImminent, promises.EventExpired},
	})
	if err != nil {
		log.Fatal(err)
	}
	current := view.PromiseID
	for renewals := 0; renewals < 2; {
		fake.Advance(50 * time.Second) // cross into the warning window
		ev := <-events
		if ev.Type != promises.EventExpiryImminent {
			log.Fatalf("unexpected event %s for %s", ev.Type, ev.PromiseID)
		}
		fmt.Printf("  %s for %s — renewing\n", ev.Type, ev.PromiseID)
		// The §4 atomic modify: a fresh promise over the same predicate,
		// releasing the expiring one only if the new grant succeeds.
		resp, err := eng.Execute(ctx, promises.Request{
			Client: "customer-view",
			PromiseRequests: []promises.PromiseRequest{{
				Predicates: []promises.Predicate{promises.MustProperty("view = true")},
				Duration:   time.Minute,
				Releases:   []string{current},
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !resp.Promises[0].Accepted {
			log.Fatalf("renewal rejected: %s", resp.Promises[0].Reason)
		}
		current = resp.Promises[0].PromiseID
		renewals++
		fmt.Printf("  renewed as %s (expires %s)\n", current, resp.Promises[0].Expires.Format(time.Kitchen))
	}

	// Checkout: stop renewing and let the promise lapse; the Expired event
	// arrives at the deadline with the room's capacity already freed.
	fake.Advance(2 * time.Minute)
	for ev := range events {
		if ev.Type == promises.EventExpired && ev.PromiseID == current {
			fmt.Printf("  %s lapsed at its deadline; room freed\n", ev.PromiseID)
			break
		}
	}
}

func seedRooms(eng promises.Engine) {
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	rooms := []struct {
		id      string
		floor   int64
		view    bool
		smoking bool
		beds    string
	}{
		{"room-512", 5, true, false, "king"},
		{"room-316", 3, true, false, "twin"},
		{"room-214", 2, false, false, "twin"},
		{"room-108", 1, false, true, "twin"},
	}
	for _, r := range rooms {
		props := map[string]promises.Value{
			"floor":   promises.Int(r.floor),
			"view":    promises.Bool(r.view),
			"smoking": promises.Bool(r.smoking),
			"beds":    promises.Str(r.beds),
		}
		if err := seeder.CreateInstance(r.id, props); err != nil {
			log.Fatal(err)
		}
	}
}
