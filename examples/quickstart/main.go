// Quickstart: the paper's Figure 1 ordering flow against an in-process
// promise manager — request a promise for 5 pink widgets, process the
// order, then purchase with an atomic release.
//
// The engine comes from promises.Open; swap in WithShards(8) or
// WithRemote("http://localhost:8642") and the rest of the program runs
// unchanged (with a named action in place of the closure for remote).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/promises"
)

func main() {
	ctx := context.Background()
	eng, err := promises.Open()
	if err != nil {
		log.Fatal(err)
	}

	// Seed the merchant's stock: 10 pink widgets on hand.
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	if err := seeder.CreatePool("pink-widgets", 10, nil); err != nil {
		log.Fatal(err)
	}

	// "Determine we need 5 pink widgets to be in stock. Send promise
	// request that (quantity of 'pink widgets' >= 5)."
	resp, err := eng.Execute(ctx, promises.Request{
		Client: "order-process",
		PromiseRequests: []promises.PromiseRequest{{
			RequestID:  "order-1",
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		log.Fatalf("promise rejected: %s", pr.Reason)
	}
	fmt.Printf("promise %s granted: 5 pink widgets will stay available until %s\n",
		pr.PromiseID, pr.Expires.Format(time.Kitchen))

	// "Continue processing order (organise payment, shippers)" — the
	// promise, not a lock, protects the stock during this work.
	fmt.Println("processing order: payment authorised, shipper booked")

	// "Send 'purchase stock' request to promise manager and release
	// promise to keep stock level >= 5" — one atomic unit.
	resp, err = eng.Execute(ctx, promises.Request{
		Client: "order-process",
		Env:    []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			level, err := ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
			return level, err
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.ActionErr != nil {
		log.Fatalf("purchase failed: %v", resp.ActionErr)
	}
	fmt.Printf("purchased 5 pink widgets; stock now %v, promise released\n", resp.ActionResult)
}
