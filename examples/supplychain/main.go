// Supplychain: the Figure 2 architecture deployed for real — three promise
// managers (factory, wholesaler, retailer) each behind its own HTTP server
// on localhost, chained by §5 delegation over the §6 wire protocol. A
// customer order at the retailer cascades promises up the chain.
//
// Every hop — a tier's upstream supplier and the customer — is the same
// unified Engine surface: the suppliers are EngineSuppliers over remote
// engines from promises.Open(WithRemote(url)), and would work identically
// over in-process engines.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
	"repro/promises"
)

// inspector is the promise-introspection surface of the local engines.
type inspector interface {
	PromiseInfo(id string) (promises.Promise, error)
}

// serveTier starts a promise engine with the standard services on a
// localhost listener and returns its base URL.
func serveTier(name string, eng promises.Engine) string {
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, transport.NewServer(eng, reg).Handler()); err != nil {
			log.Printf("%s server: %v", name, err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("%-10s listening on %s\n", name, url)
	return url
}

// remoteEngine opens a wire client for the daemon at url under the given
// client identity.
func remoteEngine(url, client string) promises.Engine {
	eng, err := promises.Open(promises.WithRemote(url), promises.WithClientID(client))
	if err != nil {
		log.Fatal(err)
	}
	return eng
}

func newTierWithStock(pool string, qty int64, suppliers map[string]promises.Supplier) promises.Engine {
	eng, err := promises.Open(promises.WithSuppliers(suppliers))
	if err != nil {
		log.Fatal(err)
	}
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	if err := seeder.CreatePool(pool, qty, nil); err != nil {
		log.Fatal(err)
	}
	return eng
}

func main() {
	ctx := context.Background()

	// Factory: deep stock, no supplier.
	factory := newTierWithStock("widgets", 1000, nil)
	factoryURL := serveTier("factory", factory)

	// Wholesaler: 20 on hand, restocks from the factory over HTTP.
	wholesaler := newTierWithStock("widgets", 20, map[string]promises.Supplier{
		"widgets": &promises.EngineSupplier{E: remoteEngine(factoryURL, "wholesaler"), Client: "wholesaler"},
	})
	wholesalerURL := serveTier("wholesaler", wholesaler)

	// Retailer: 5 on hand, restocks from the wholesaler over HTTP.
	retailer := newTierWithStock("widgets", 5, map[string]promises.Supplier{
		"widgets": &promises.EngineSupplier{E: remoteEngine(wholesalerURL, "retailer"), Client: "retailer"},
	})
	retailerURL := serveTier("retailer", retailer)

	// The customer talks only to the retailer — through the same Engine
	// interface the tiers use among themselves.
	customer := remoteEngine(retailerURL, "customer")

	fmt.Println("\ncustomer orders 30 widgets from the retailer (5 local, 20 wholesale, 5 factory):")
	resp, err := customer.Execute(ctx, promises.Request{
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 30)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		log.Fatalf("rejected: %s", pr.Reason)
	}
	fmt.Printf("  retailer granted %s (expires %s)\n", pr.PromiseID, pr.Expires.Format(time.Kitchen))

	info, err := retailer.(inspector).PromiseInfo(pr.PromiseID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  retailer delegated %d units upstream via %s\n", info.DelegatedQty[0], info.DelegatedID[0])
	wInfo, err := wholesaler.(inspector).PromiseInfo(info.DelegatedID[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wholesaler delegated %d units to the factory via %s\n", wInfo.DelegatedQty[0], wInfo.DelegatedID[0])

	// Over-asking gets a §6-style counter-offer instead of a blind no.
	fmt.Println("\na rival asks the factory for 2000 widgets:")
	rival := remoteEngine(factoryURL, "rival")
	resp, err = rival.Execute(ctx, promises.Request{
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 2000)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	rpr := resp.Promises[0]
	fmt.Printf("  accepted=%v, counter-offer=%v\n", rpr.Accepted, rpr.Counter)

	// Purchase: the retailer ships local stock under the promise with an
	// atomic release; upstream promises release across the chain. The
	// named action crosses the wire where a closure could not.
	fmt.Println("\ncustomer purchases (retailer ships 5 local; backorders ship upstream):")
	resp, err = customer.Execute(ctx, promises.Request{
		Env:          []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		ActionName:   "adjust-pool",
		ActionParams: map[string]string{"pool": "widgets", "delta": "-5"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.ActionErr != nil {
		log.Fatal(resp.ActionErr)
	}
	fmt.Printf("  retailer stock now %v\n", resp.ActionResult)

	// Remote audits through the same Engine surface the tiers expose.
	for _, tier := range []struct {
		name string
		eng  promises.Engine
	}{{"retailer", customer}, {"wholesaler", remoteEngine(wholesalerURL, "auditor")}, {"factory", rival}} {
		rep, err := tier.eng.Audit()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %s\n", tier.name, rep)
	}
}
