// Supplychain: the Figure 2 architecture deployed for real — three promise
// managers (factory, wholesaler, retailer) each behind its own HTTP server
// on localhost, chained by §5 delegation over the §6 wire protocol. A
// customer order at the retailer cascades promises up the chain.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/promises"
)

// serveTier starts a promise manager with the standard services on a
// localhost listener and returns its base URL.
func serveTier(name string, m *core.Manager) string {
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, transport.NewServer(m, reg).Handler()); err != nil {
			log.Printf("%s server: %v", name, err)
		}
	}()
	url := "http://" + ln.Addr().String()
	fmt.Printf("%-10s listening on %s\n", name, url)
	return url
}

func newManagerWithStock(pool string, qty int64, suppliers map[string]promises.Supplier) *core.Manager {
	m, err := promises.New(promises.Config{Suppliers: suppliers})
	if err != nil {
		log.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, pool, qty, nil); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	// Factory: deep stock, no supplier.
	factory := newManagerWithStock("widgets", 1000, nil)
	factoryURL := serveTier("factory", factory)

	// Wholesaler: 20 on hand, restocks from the factory over HTTP.
	wholesaler := newManagerWithStock("widgets", 20, map[string]promises.Supplier{
		"widgets": &transport.RemoteSupplier{C: &transport.Client{BaseURL: factoryURL, Client: "wholesaler"}},
	})
	wholesalerURL := serveTier("wholesaler", wholesaler)

	// Retailer: 5 on hand, restocks from the wholesaler over HTTP.
	retailer := newManagerWithStock("widgets", 5, map[string]promises.Supplier{
		"widgets": &transport.RemoteSupplier{C: &transport.Client{BaseURL: wholesalerURL, Client: "retailer"}},
	})
	retailerURL := serveTier("retailer", retailer)

	// The customer talks only to the retailer.
	customer := &transport.Client{BaseURL: retailerURL, Client: "customer"}

	fmt.Println("\ncustomer orders 30 widgets from the retailer (5 local, 20 wholesale, 5 factory):")
	pr, err := customer.RequestPromise([]promises.Predicate{promises.Quantity("widgets", 30)}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	if !pr.Accepted {
		log.Fatalf("rejected: %s", pr.Reason)
	}
	fmt.Printf("  retailer granted %s (expires %s)\n", pr.PromiseID, pr.Expires.Format(time.Kitchen))

	info, err := retailer.PromiseInfo(pr.PromiseID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  retailer delegated %d units upstream via %s\n", info.DelegatedQty[0], info.DelegatedID[0])
	wInfo, err := wholesaler.PromiseInfo(info.DelegatedID[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  wholesaler delegated %d units to the factory via %s\n", wInfo.DelegatedQty[0], wInfo.DelegatedID[0])

	// Over-asking gets a §6-style counter-offer instead of a blind no.
	fmt.Println("\na rival asks the factory for 2000 widgets:")
	rival := &transport.Client{BaseURL: factoryURL, Client: "rival"}
	rpr, err := rival.RequestPromise([]promises.Predicate{promises.Quantity("widgets", 2000)}, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  accepted=%v, counter-offer=%v\n", rpr.Accepted, rpr.Counter)

	// Purchase: the retailer ships local stock under the promise with an
	// atomic release; upstream promises release across the chain.
	fmt.Println("\ncustomer purchases (retailer ships 5 local; backorders ship upstream):")
	level, err := customer.Invoke(
		[]promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		"adjust-pool", map[string]string{"pool": "widgets", "delta": "-5"},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  retailer stock now %s\n", level)

	for _, tier := range []struct {
		name string
		m    *core.Manager
	}{{"retailer", retailer}, {"wholesaler", wholesaler}, {"factory", factory}} {
		rep, err := tier.m.Audit()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %s\n", tier.name, rep)
	}
}
