// Travel: the §4 travel-planning example — "a client may want a promise
// that a flight and a rental car and a hotel room will all be available",
// granted or rejected as one atomic unit, plus the fallback strategy the
// paper sketches ("obtaining them one at a time, trying alternative
// resources and predicates when other promise requests are rejected") and
// an atomic itinerary upgrade (§4, third requirement). The piecewise
// fallback runs through an Activity, the all-or-release §10 coordinator.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/resource"
	"repro/promises"
)

// inspector is the promise-introspection surface of the local engines.
type inspector interface {
	PromiseInfo(id string) (promises.Promise, error)
}

func main() {
	ctx := context.Background()
	eng, err := promises.Open()
	if err != nil {
		log.Fatal(err)
	}
	seed(eng)
	ins := eng.(inspector)

	// Agent 1 books the whole trip atomically: one flight seat, one rental
	// car, and any 5th-floor hotel room.
	trip := []promises.Predicate{
		promises.Quantity("flights-SYD-SFO", 1),
		promises.Quantity("rental-cars", 1),
		promises.MustProperty("floor = 5"),
	}
	resp, err := eng.Execute(ctx, promises.Request{
		Client:          "agent-1",
		PromiseRequests: []promises.PromiseRequest{{Predicates: trip, Duration: time.Minute}},
	})
	if err != nil {
		log.Fatal(err)
	}
	pr1 := resp.Promises[0]
	fmt.Printf("agent-1 atomic trip: accepted=%v promise=%s\n", pr1.Accepted, pr1.PromiseID)

	// Agent 2 tries the same trip; the last rental car is promised, so the
	// whole request is rejected — and crucially no flight seat leaks.
	resp, err = eng.Execute(ctx, promises.Request{
		Client:          "agent-2",
		PromiseRequests: []promises.PromiseRequest{{Predicates: trip, Duration: time.Minute}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent-2 atomic trip: accepted=%v (%s)\n",
		resp.Promises[0].Accepted, resp.Promises[0].Reason)

	// Agent 2 falls back to piecewise booking with alternatives: flight
	// first, then train instead of car, then any room at all — tracked by
	// an Activity so everything is handed back if the trip falls through.
	activity := promises.NewActivity("agent-2")
	for _, alt := range [][]promises.Predicate{
		{promises.Quantity("flights-SYD-SFO", 1)},
		{promises.Quantity("rental-cars", 1)},
		{promises.Quantity("train-passes", 1)}, // alternative when cars are gone
		{promises.MustProperty("floor >= 1")},
	} {
		pr, err := activity.Obtain(ctx, eng, alt, time.Minute)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("agent-2 piecewise %-28s accepted=%v\n", alt[0].String(), pr.Accepted)
	}
	held, err := activity.Complete()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent-2 holds %d promises: %v\n", len(held), held)

	// Agent 1 upgrades the trip atomically: two flight seats instead of
	// one (a companion joins), releasing the old promise only if the new
	// one is granted.
	upgrade := []promises.Predicate{
		promises.Quantity("flights-SYD-SFO", 2),
		promises.Quantity("rental-cars", 1),
		promises.MustProperty("floor = 5"),
	}
	resp, err = eng.Execute(ctx, promises.Request{
		Client: "agent-1",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: upgrade,
			Duration:   time.Minute,
			Releases:   []string{pr1.PromiseID},
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	up := resp.Promises[0]
	fmt.Printf("agent-1 upgrade to 2 seats: accepted=%v", up.Accepted)
	if !up.Accepted {
		info, _ := ins.PromiseInfo(pr1.PromiseID)
		fmt.Printf(" — old promise still %v (nothing lost)", info.State)
	}
	fmt.Println()

	// Finally agent 1 confirms: the booking action consumes the resources
	// and releases the trip promise atomically.
	active := up.PromiseID
	if !up.Accepted {
		active = pr1.PromiseID
	}
	info, _ := ins.PromiseInfo(active)
	room := info.Assigned[2]
	resp, err = eng.Execute(ctx, promises.Request{
		Client: "agent-1",
		Env:    []promises.EnvEntry{{PromiseID: active, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			seats := info.Predicates[0].Qty
			if _, err := ac.Resources.AdjustPool(ac.Tx, "flights-SYD-SFO", -seats); err != nil {
				return nil, err
			}
			if _, err := ac.Resources.AdjustPool(ac.Tx, "rental-cars", -1); err != nil {
				return nil, err
			}
			return room, ac.Resources.SetStatus(ac.Tx, room, resource.Taken)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if resp.ActionErr != nil {
		log.Fatalf("confirmation failed: %v", resp.ActionErr)
	}
	fmt.Printf("agent-1 confirmed: room %v booked, promise released\n", resp.ActionResult)
}

func seed(eng promises.Engine) {
	seeder, err := promises.Seed(eng)
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(seeder.CreatePool("flights-SYD-SFO", 3, nil))
	must(seeder.CreatePool("rental-cars", 1, nil))
	must(seeder.CreatePool("train-passes", 10, nil))
	for i, floor := range []int64{5, 5, 3} {
		must(seeder.CreateInstance(fmt.Sprintf("room-%d0%d", floor, i+1), map[string]promises.Value{
			"floor": promises.Int(floor),
		}))
	}
}
