package main

import "testing"

func res(iters int64, ns float64) result { return result{Iterations: iters, NsPerOp: ns} }

func TestDiffGating(t *testing.T) {
	old := map[string]result{
		"p.BenchmarkSlow":  res(100, 10000),
		"p.BenchmarkFlat":  res(100, 10000),
		"p.BenchmarkTiny":  res(100, 50),
		"p.BenchmarkSmoke": res(1, 10000),
		"p.BenchmarkGone":  res(100, 10000),
	}
	new := map[string]result{
		"p.BenchmarkSlow":  res(100, 20000), // 2.0x: regression
		"p.BenchmarkFlat":  res(100, 10500), // 1.05x: within threshold
		"p.BenchmarkTiny":  res(100, 500),   // 10x but under the noise floor
		"p.BenchmarkSmoke": res(1, 99999),   // single-iteration rows never gate
		"p.BenchmarkNew":   res(100, 10000), // no baseline
	}
	rows, regressed := diff(old, new, 1.30, 1000)
	if !regressed {
		t.Fatal("2.0x slowdown not flagged as regression")
	}
	byName := make(map[string]row)
	for _, r := range rows {
		byName[r.Name] = r
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (union of both sides)", len(rows))
	}
	for name, wantGated := range map[string]bool{
		"p.BenchmarkSlow":  true,
		"p.BenchmarkFlat":  true,
		"p.BenchmarkTiny":  false,
		"p.BenchmarkSmoke": false,
	} {
		if byName[name].Gated != wantGated {
			t.Errorf("%s: gated=%v, want %v", name, byName[name].Gated, wantGated)
		}
	}
	if r := byName["p.BenchmarkGone"]; r.New >= 0 {
		t.Errorf("vanished benchmark reported a new ns/op: %+v", r)
	}
	if r := byName["p.BenchmarkNew"]; r.Old >= 0 || r.Gated {
		t.Errorf("baseline-less benchmark must not gate: %+v", r)
	}

	// Without the 2x row the same inputs pass.
	delete(old, "p.BenchmarkSlow")
	delete(new, "p.BenchmarkSlow")
	if _, regressed := diff(old, new, 1.30, 1000); regressed {
		t.Fatal("regression reported with no gated row past threshold")
	}
	// threshold 0 turns the gate off entirely.
	old["p.BenchmarkSlow"], new["p.BenchmarkSlow"] = res(100, 10000), res(100, 90000)
	if _, regressed := diff(old, new, 0, 1000); regressed {
		t.Fatal("threshold 0 must disable the gate")
	}
}
