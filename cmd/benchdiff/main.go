// Command benchdiff compares two benchmark summaries produced by
// cmd/benchjson and reports the per-benchmark delta, so the performance
// trajectory across PRs is a reviewable table instead of two opaque JSON
// artifacts. It is the advisory regression gate in CI: when any benchmark
// common to both files slows down by more than the configured factor,
// benchdiff exits nonzero (the CI step surfaces that without failing the
// build — shared runners are too noisy for a hard gate).
//
// Usage:
//
//	benchdiff [-threshold 1.30] [-min-ns 1000] OLD.json NEW.json
//	benchdiff -history BENCH_pr5.json,BENCH_pr7.json,BENCH_pr8.json
//
// OLD and NEW are benchjson outputs (see BENCH_pr*.json at the repository
// root). Benchmarks present on only one side are listed but never gate.
// The gate also ignores benchmarks whose baseline ran a single iteration
// (smoke rows measure compilation, not speed) or whose ns/op sits under
// the -min-ns noise floor.
//
// -history takes a comma-separated list of summaries in chronological
// order and prints each benchmark's ns/op trajectory across them — the
// whole performance history in one table. History mode never gates; it is
// a reading aid, not a check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// result mirrors cmd/benchjson's per-benchmark record.
type result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// row is one line of the comparison table.
type row struct {
	Name     string
	Old, New float64 // ns/op; <0 when the side is missing
	Ratio    float64 // New/Old when both sides exist
	Gated    bool    // counted toward the regression verdict
}

// diff lines up the two summaries. A row gates when both sides exist,
// the baseline is trustworthy (more than one iteration, at or above the
// noise floor) and threshold > 0; regressed reports whether any gated
// row's ratio exceeds threshold.
func diff(old, new map[string]result, threshold, minNs float64) (rows []row, regressed bool) {
	names := make(map[string]bool, len(old)+len(new))
	for n := range old {
		names[n] = true
	}
	for n := range new {
		names[n] = true
	}
	for n := range names {
		r := row{Name: n, Old: -1, New: -1}
		o, hasOld := old[n]
		v, hasNew := new[n]
		if hasOld {
			r.Old = o.NsPerOp
		}
		if hasNew {
			r.New = v.NsPerOp
		}
		if hasOld && hasNew && o.NsPerOp > 0 {
			r.Ratio = v.NsPerOp / o.NsPerOp
			r.Gated = threshold > 0 && o.Iterations > 1 && v.Iterations > 1 &&
				o.NsPerOp >= minNs && v.NsPerOp >= minNs
			if r.Gated && r.Ratio > threshold {
				regressed = true
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, regressed
}

func load(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]result)
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// history prints the per-benchmark ns/op trajectory across the named
// summaries, in the order given.
func history(paths []string) error {
	sums := make([]map[string]result, len(paths))
	labels := make([]string, len(paths))
	names := make(map[string]bool)
	for i, p := range paths {
		s, err := load(p)
		if err != nil {
			return err
		}
		sums[i] = s
		labels[i] = strings.TrimSuffix(filepath.Base(p), ".json")
		for n := range s {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Printf("%-64s", "benchmark")
	for _, l := range labels {
		fmt.Printf(" %14s", l)
	}
	fmt.Println()
	for _, n := range sorted {
		fmt.Printf("%-64s", n)
		for _, s := range sums {
			if r, ok := s[n]; ok {
				fmt.Printf(" %14.0f", r.NsPerOp)
			} else {
				fmt.Printf(" %14s", "-")
			}
		}
		fmt.Println()
	}
	return nil
}

func main() {
	threshold := flag.Float64("threshold", 1.30, "exit nonzero when a gated benchmark's ns/op grows past this factor; 0 reports only")
	minNs := flag.Float64("min-ns", 1000, "noise floor: benchmarks under this many ns/op never gate")
	hist := flag.String("history", "", "comma-separated summaries in chronological order; print every benchmark's ns/op trajectory and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: benchdiff [flags] OLD.json NEW.json\n       benchdiff -history F1.json,F2.json,...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *hist != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(64)
		}
		if err := history(strings.Split(*hist, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(64)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	new, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	rows, regressed := diff(old, new, *threshold, *minNs)
	fmt.Printf("%-64s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		switch {
		case r.Old < 0:
			fmt.Printf("%-64s %14s %14.0f %9s\n", r.Name, "-", r.New, "new")
		case r.New < 0:
			fmt.Printf("%-64s %14.0f %14s %9s\n", r.Name, r.Old, "-", "gone")
		default:
			mark := ""
			if r.Gated && r.Ratio > *threshold {
				mark = "  << regression"
			} else if !r.Gated {
				mark = "  (not gated)"
			}
			fmt.Printf("%-64s %14.0f %14.0f %+8.1f%%%s\n", r.Name, r.Old, r.New, (r.Ratio-1)*100, mark)
		}
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "benchdiff: regression past %.2fx threshold\n", *threshold)
		os.Exit(2)
	}
}
