// Command docscheck keeps the repo's markdown honest: every relative link
// must resolve to a real file (and, for markdown targets with a #fragment,
// to a real heading), and every fenced ```go snippet must at least parse.
// CI runs it over README.md, ROADMAP.md and docs/ so documentation rot
// fails the build instead of accumulating.
//
// Usage:
//
//	docscheck [-root .] FILE.md ...
//
// External links (anything with a scheme) are not fetched; links that
// resolve outside -root (e.g. the GitHub ../../actions badge) are skipped,
// since only the repo's own files are checkable offline.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

var linkRe = regexp.MustCompile(`\]\(([^()\s]+)\)`)

func main() {
	root := flag.String("root", ".", "repository root; links resolving outside it are skipped")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "docscheck: no files given")
		os.Exit(2)
	}
	absRoot, err := filepath.Abs(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	var problems []string
	for _, file := range flag.Args() {
		probs, err := checkFile(absRoot, file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docscheck:", err)
			os.Exit(2)
		}
		problems = append(problems, probs...)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d file(s) OK\n", flag.NArg())
}

func checkFile(root, file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	text := string(data)
	var problems []string
	for _, link := range extractLinks(text) {
		if msg := checkLink(root, file, link); msg != "" {
			problems = append(problems, fmt.Sprintf("%s: %s", file, msg))
		}
	}
	for i, snippet := range goSnippets(text) {
		if err := parseGoSnippet(snippet); err != nil {
			problems = append(problems, fmt.Sprintf("%s: go snippet %d does not parse: %v", file, i+1, err))
		}
	}
	return problems, nil
}

// extractLinks returns the target of every inline markdown link or image,
// skipping fenced code blocks (where "](..." is usually code, not a link).
func extractLinks(text string) []string {
	var links []string
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			links = append(links, m[1])
		}
	}
	return links
}

func checkLink(root, file, link string) string {
	if strings.Contains(link, "://") || strings.HasPrefix(link, "mailto:") {
		return "" // external; not fetched
	}
	path, frag, _ := strings.Cut(link, "#")
	target := file
	if path != "" {
		target = filepath.Join(filepath.Dir(file), path)
		abs, err := filepath.Abs(target)
		if err != nil || !strings.HasPrefix(abs+string(filepath.Separator), root+string(filepath.Separator)) {
			return "" // escapes the repo (e.g. the CI badge); not checkable offline
		}
		if _, err := os.Stat(target); err != nil {
			return fmt.Sprintf("broken link %q: %v", link, err)
		}
	}
	if frag != "" && strings.HasSuffix(target, ".md") {
		ok, err := hasAnchor(target, frag)
		if err != nil {
			return fmt.Sprintf("link %q: %v", link, err)
		}
		if !ok {
			return fmt.Sprintf("link %q: no heading for anchor #%s in %s", link, frag, target)
		}
	}
	return ""
}

// hasAnchor reports whether the markdown file has a heading whose
// GitHub-style slug equals frag.
func hasAnchor(file, frag string) (bool, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return false, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if !strings.HasPrefix(heading, " ") {
			continue
		}
		if slugify(heading) == frag {
			return true, nil
		}
	}
	return false, nil
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase, drop
// everything but letters, digits, spaces, hyphens and underscores, then
// turn each space into a hyphen.
func slugify(heading string) string {
	heading = strings.TrimSpace(strings.ToLower(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// goSnippets returns the bodies of ```go fenced blocks.
func goSnippets(text string) []string {
	var snippets []string
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		var body []string
		for i++; i < len(lines) && strings.TrimSpace(lines[i]) != "```"; i++ {
			body = append(body, lines[i])
		}
		snippets = append(snippets, strings.Join(body, "\n"))
	}
	return snippets
}

// parseGoSnippet accepts a snippet that parses as a whole file, as
// top-level declarations, or as statements — documentation quotes all
// three shapes.
func parseGoSnippet(src string) error {
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "snippet.go", src, 0); err == nil {
		return nil
	}
	if _, err := parser.ParseFile(fset, "snippet.go", "package p\n"+src, 0); err == nil {
		return nil
	}
	_, err := parser.ParseFile(fset, "snippet.go", "package p\nfunc _() {\n"+src+"\n}", 0)
	return err
}
