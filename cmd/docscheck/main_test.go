package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		" Durability: WAL + checkpoints": "durability-wal--checkpoints",
		" Sync policies":                 "sync-policies",
		" The unified Engine API":        "the-unified-engine-api",
		" What is durable, what is not":  "what-is-durable-what-is-not",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckFileCatchesRot(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.md")
	if err := os.WriteFile(good, []byte("# Target\n\n## Deep Dive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join(dir, "doc.md")
	body := "# Doc\n\n" +
		"[ok](good.md) [ok-anchor](good.md#deep-dive) [self](#doc)\n" +
		"[rot](missing.md) [bad-anchor](good.md#nope)\n" +
		"[ext](https://example.com/whatever)\n\n" +
		"```go\nx := breaks(\n```\n\n" +
		"```go\neng, _ := promises.Open()\n_ = eng\n```\n"
	if err := os.WriteFile(doc, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	problems, err := checkFile(dir, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly three: the missing file, the missing anchor, the unparsable
	// first snippet. The second snippet parses as statements.
	if len(problems) != 3 {
		t.Fatalf("got %d problems, want 3: %v", len(problems), problems)
	}
}

func TestGoSnippetShapes(t *testing.T) {
	for _, src := range []string{
		"package main\nfunc main() {}",           // whole file
		"type I interface {\n\tM() error\n}",     // declaration
		"resp, _ := do()\nfor range resp {\n}\n", // statements
	} {
		if err := parseGoSnippet(src); err != nil {
			t.Errorf("snippet %q rejected: %v", src, err)
		}
	}
	if err := parseGoSnippet("func ( {"); err == nil {
		t.Error("garbage snippet accepted")
	}
}
