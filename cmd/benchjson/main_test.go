package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	name, res, ok := parseBenchLine("BenchmarkCrossShardPropertyGrant/skewed-8 \t     100\t    104536 ns/op\t         7.000 skipped-shards/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if name != "BenchmarkCrossShardPropertyGrant/skewed-8" {
		t.Fatalf("name = %q", name)
	}
	if res.Iterations != 100 || res.NsPerOp != 104536 {
		t.Fatalf("res = %+v", res)
	}
	if res.Metrics["skipped-shards/op"] != 7 {
		t.Fatalf("metrics = %v", res.Metrics)
	}

	for _, bad := range []string{
		"PASS",
		"ok  \trepro/internal/core\t0.033s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"goos: linux",
		"BenchmarkNoNs-8 100 12 allocs/op",
	} {
		if _, _, ok := parseBenchLine(bad); ok {
			t.Fatalf("parsed %q as a benchmark result", bad)
		}
	}
}
