// Command benchjson converts `go test -json -bench` output into a compact
// machine-readable benchmark summary, so CI can archive one JSON artifact
// per PR (BENCH_pr<N>.json) and the repository's performance trajectory is
// diffable across PRs instead of buried in job logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime=1x -json ./... | benchjson > BENCH.json
//
// It reads the test2json event stream on stdin, extracts benchmark result
// lines ("BenchmarkFoo-8  100  123 ns/op  7.0 extra/op"), and emits a JSON
// object keyed by package-qualified benchmark name:
//
//	{
//	  "repro/internal/core.BenchmarkCheckUnderWriteLoad/writers=0-8": {
//	    "iterations": 100,
//	    "ns_per_op": 123,
//	    "metrics": {"extra/op": 7}
//	  }
//	}
//
// Unparseable lines are ignored; plain (non -json) `go test` output also
// works, with names left unqualified.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json event schema benchjson needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark's extracted numbers.
type result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results := make(map[string]result)
	record := func(pkg, text string) {
		name, res, ok := parseBenchLine(text)
		if !ok {
			return
		}
		if pkg != "" {
			name = pkg + "." + name
		}
		results[name] = res
	}
	// test2json splits one benchmark result across output events (the name
	// flushes before the run, the numbers after), so events are reassembled
	// into lines per package before parsing.
	pending := make(map[string]string)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "{") {
			record("", line)
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
			continue
		}
		buf := pending[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			record(ev.Package, buf[:nl])
			buf = buf[nl+1:]
		}
		pending[ev.Package] = buf
	}
	for pkg, buf := range pending {
		record(pkg, buf)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	// Deterministic output: sorted keys via an ordered re-marshal.
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "{")
	for i, k := range keys {
		b, err := json.Marshal(results[k])
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		comma := ","
		if i == len(keys)-1 {
			comma = ""
		}
		fmt.Fprintf(out, "  %q: %s%s\n", k, b, comma)
	}
	fmt.Fprintln(out, "}")
}

// parseBenchLine extracts one "BenchmarkName-P  N  X ns/op [Y unit]..."
// result line. ok is false for anything else.
func parseBenchLine(line string) (string, result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	res := result{Iterations: iters}
	// The remainder alternates value/unit pairs: "123 ns/op 7.5 x/op".
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			sawNs = true
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	if !sawNs {
		return "", result{}, false
	}
	return fields[0], res, true
}
