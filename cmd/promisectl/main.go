// Command promisectl is a command-line promise client for a promised
// server: it requests, releases, checks and modifies promises, and invokes
// service actions under promise environments — the client box of Figure 2,
// driving the same Engine surface applications use.
//
// Usage:
//
//	promisectl [-url http://localhost:8642] [-client cli] [-timeout 10s] <command> [args]
//
// Commands:
//
//	request <predicate>...        request one promise over the predicates
//	modify <old-id> <predicate>.. atomically swap old promise for a new one
//	release <promise-id>...       release promises atomically
//	check <promise-id>...         report each promise's usability
//	watch [promise-id]...         stream lifecycle events (SSE; see -types,
//	                              -client, -exit-on, -after)
//	invoke <action> [k=v]...      run an action (optionally -env/-release-env)
//	buy <pool> <qty> <promise-id> purchase under a promise, releasing it
//	stats                         show the manager's activity counters
//	audit                         run a server-side consistency audit
//
// Predicates:
//
//	qty:<pool>=<n>       anonymous view (quantity of pool >= n)
//	inst:<id>            named view (instance available)
//	prop:<expression>    property view (standard predicate syntax)
//
// Cluster mode: -cluster <coordinator-url> discovers the node set from the
// coordinator's /cluster/status endpoint and drives a federated engine
// over it — grants route to the consistent-hash owner, cross-node requests
// run the two-phase path. `promisectl cluster status` prints the
// coordinator's health view (add -json for machine-readable output).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/promises"
)

func main() {
	url := flag.String("url", "http://localhost:8642", "promise manager base URL")
	client := flag.String("client", "cli", "promise client identity")
	dur := flag.Duration("duration", time.Minute, "requested promise duration")
	prio := flag.Int("priority", 0, "request/modify: priority tier; a higher tier may displace lower-tier preemptible holds")
	preemptible := flag.Bool("preemptible", false, "request/modify: mark the promise preemptible (spot tier)")
	timeout := flag.Duration("timeout", 10*time.Second, "deadline for the whole command")
	env := flag.String("env", "", "comma-separated promise ids protecting the action")
	release := flag.Bool("release-env", false, "release environment promises with the action")
	jsonOut := flag.Bool("json", false, "stats/audit: fetch structured JSON instead of text")
	clusterURL := flag.String("cluster", "", "cluster coordinator base URL; discover the node set from /cluster/status and drive a federated engine")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	c := &transport.Client{BaseURL: *url, Client: *client}
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The cluster status view lives on the coordinator, whichever flag
	// named it.
	if args[0] == "cluster" {
		if len(args) != 2 || args[1] != "status" {
			usage()
		}
		coordURL := *clusterURL
		if coordURL == "" {
			coordURL = *url
		}
		if err := cmdGet(ctx, coordURL, cluster.StatusEndpoint, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "promisectl:", err)
			os.Exit(1)
		}
		return
	}

	// eng is what every command drives: the single daemon at -url, or a
	// federated engine over the coordinator's node set.
	var eng promises.Engine = c
	if *clusterURL != "" {
		ce, err := openCluster(ctx, *clusterURL, *client, *timeout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promisectl:", err)
			os.Exit(1)
		}
		eng = ce
	}

	var err error
	switch args[0] {
	case "request":
		geng, gctx := grantEngine(eng, c, *clusterURL != "", *timeout)
		err = cmdRequest(gctx, geng, *dur, *prio, *preemptible, nil, args[1:])
	case "modify":
		if len(args) < 3 {
			usage()
		}
		geng, gctx := grantEngine(eng, c, *clusterURL != "", *timeout)
		err = cmdRequest(gctx, geng, *dur, *prio, *preemptible, []string{args[1]}, args[2:])
	case "release":
		if len(args) < 2 {
			usage()
		}
		err = eng.Release(ctx, *client, args[1:]...)
		if err == nil {
			fmt.Printf("released %s\n", strings.Join(args[1:], ", "))
		}
	case "check":
		if len(args) < 2 {
			usage()
		}
		err = cmdCheck(ctx, eng, *client, args[1:])
	case "watch":
		err = cmdWatch(ctx, eng, args[1:])
	case "invoke":
		if len(args) < 2 {
			usage()
		}
		if *clusterURL != "" {
			err = fmt.Errorf("invoke is not supported in cluster mode; target a node with -url")
			break
		}
		err = cmdInvoke(ctx, c, *env, *release, args[1], args[2:])
	case "buy":
		if len(args) != 4 {
			usage()
		}
		if *clusterURL != "" {
			err = fmt.Errorf("buy is not supported in cluster mode; target a node with -url")
			break
		}
		err = cmdBuy(ctx, c, args[1], args[2], args[3])
	case "stats":
		if *clusterURL != "" {
			fmt.Println(eng.Stats())
		} else {
			err = cmdGet(ctx, *url, "/stats", *jsonOut)
		}
	case "health":
		if *clusterURL != "" {
			err = fmt.Errorf("health targets one daemon; name it with -url")
			break
		}
		err = cmdHealth(ctx, *url, *jsonOut)
	case "audit":
		if *clusterURL != "" {
			var rep *core.AuditReport
			if rep, err = eng.Audit(); err == nil {
				fmt.Println(rep)
				if !rep.Healthy() {
					err = fmt.Errorf("audit found problems")
				}
			}
		} else {
			err = cmdGet(ctx, *url, "/audit", *jsonOut)
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promisectl:", err)
		os.Exit(1)
	}
}

// openCluster asks the coordinator for its member list and opens a
// federated engine over the nodes it reports.
func openCluster(ctx context.Context, coordURL, client string, timeout time.Duration) (promises.Engine, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordURL+cluster.StatusEndpoint+"?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("coordinator %s: %v", coordURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("coordinator %s returned %s", coordURL, resp.Status)
	}
	var st cluster.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("coordinator %s: decoding status: %v", coordURL, err)
	}
	nodes := make(map[string]string, len(st.Nodes))
	for _, n := range st.Nodes {
		if n.URL != "" {
			nodes[n.ID] = n.URL
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("coordinator %s reports no addressable nodes", coordURL)
	}
	return promises.Open(
		promises.WithCluster(nodes),
		promises.WithClientID(client),
		promises.WithHTTPClient(&http.Client{Timeout: timeout}),
	)
}

// grantEngine prepares the request/modify exchange (see grantClient); in
// cluster mode the engine's HTTP client already bounds each hop.
func grantEngine(eng promises.Engine, c *transport.Client, clustered bool, timeout time.Duration) (promises.Engine, context.Context) {
	if clustered {
		return eng, context.Background()
	}
	return grantClient(c, timeout)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: promisectl [flags] <request|modify|release|check|watch|invoke|buy|stats|audit|health> ...
  request qty:pink-widgets=5 prop:'floor = 5'
  request -- see also -priority/-preemptible for spot-tier requests
  modify prm-1 qty:acct-alice=200
  release prm-1 prm-2
  check prm-1 prm-2
  watch [-types granted,expired] [-exit-on expired] [prm-1 ...]
  invoke pool-level pool=pink-widgets
  buy pink-widgets 5 prm-1
  stats                       show the manager's activity counters
  audit                       run a server-side consistency audit
  health                      probe /healthz and /readyz; exit 0 only when ready (-json for structure)
  cluster status              show the coordinator's health view (-cluster or -url names it)`)
	os.Exit(2)
}

// grantClient prepares the request/modify exchange: a context deadline
// would cross the wire and cap the granted duration at -timeout (the
// engines' unified timeout vocabulary), which is not what a CLI -duration
// flag means — so grants run under a background context and the exchange
// is bounded at the HTTP layer instead.
func grantClient(c *transport.Client, timeout time.Duration) (*transport.Client, context.Context) {
	gc := *c
	gc.HTTP = &http.Client{Timeout: timeout}
	return &gc, context.Background()
}

// cmdWatch streams lifecycle events until the deadline, printing one line
// per event; with -exit-on it returns successfully as soon as an event of
// that type arrives. Its flags follow the subcommand
// (`watch -exit-on expired prm-1 ...`), so it parses its own set.
func cmdWatch(ctx context.Context, eng promises.Engine, args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	types := fs.String("types", "", "comma-separated event types to stream (default all)")
	client := fs.String("client", "", "only events for this client's promises (default all)")
	exitOnFlag := fs.String("exit-on", "", "exit successfully once an event of this type arrives")
	after := fs.Uint64("after", 0, "resume the stream after this sequence number")
	if err := fs.Parse(args); err != nil {
		return err
	}
	exitOn := *exitOnFlag
	opts := core.WatchOptions{Client: *client, PromiseIDs: fs.Args()}
	if *types != "" {
		for _, t := range strings.Split(*types, ",") {
			opts.Types = append(opts.Types, core.EventType(strings.TrimSpace(t)))
		}
	}
	if *after > 0 {
		opts.AfterSeq, opts.Replay = *after, true
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	events, err := eng.Watch(ctx, opts)
	if err != nil {
		return err
	}
	for {
		select {
		case <-ctx.Done():
			if exitOn != "" {
				return fmt.Errorf("no %q event before the deadline", exitOn)
			}
			return nil
		case ev, ok := <-events:
			if !ok {
				return fmt.Errorf("event stream closed")
			}
			line := fmt.Sprintf("%d %s %s %s", ev.Seq, ev.Time.Format(time.RFC3339), ev.Type, ev.PromiseID)
			if ev.Client != "" {
				line += " client=" + ev.Client
			}
			if !ev.Expires.IsZero() {
				line += " expires=" + ev.Expires.Format(time.RFC3339)
			}
			if ev.By != "" {
				line += fmt.Sprintf(" by=%s tier=%d", ev.By, ev.Priority)
			}
			if ev.Reason != "" {
				line += fmt.Sprintf(" (%s)", ev.Reason)
			}
			fmt.Println(line)
			if exitOn != "" && ev.Type == core.EventType(exitOn) {
				return nil
			}
		}
	}
}

// cmdGet fetches a read-only operational endpoint.
func cmdGet(ctx context.Context, base, path string, jsonOut bool) error {
	if jsonOut {
		path += "?format=json"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s returned %s", path, resp.Status)
	}
	return nil
}

// cmdHealth probes the daemon's liveness (/healthz) and readiness
// (/readyz) endpoints. The exit code is the contract scripts key on: zero
// only when the daemon is up AND ready; a degraded daemon (reads up,
// mutations rejected) answers liveness but fails readiness.
func cmdHealth(ctx context.Context, base string, jsonOut bool) error {
	get := func(path string) (int, string, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
		if err != nil {
			return 0, "", err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return resp.StatusCode, strings.TrimSpace(string(body)), err
	}

	liveStatus, liveBody, err := get("/healthz")
	if err != nil {
		return fmt.Errorf("liveness: %v", err)
	}
	readyPath := "/readyz"
	if jsonOut {
		readyPath += "?format=json"
	}
	readyStatus, readyBody, err := get(readyPath)
	if err != nil {
		return fmt.Errorf("readiness: %v", err)
	}

	if jsonOut {
		var ready map[string]any
		if err := json.Unmarshal([]byte(readyBody), &ready); err != nil {
			return fmt.Errorf("readiness: decoding %q: %v", readyBody, err)
		}
		out := map[string]any{"live": liveStatus == http.StatusOK}
		for k, v := range ready {
			out[k] = v
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Printf("live:  %s\n", liveBody)
		fmt.Printf("ready: %s\n", readyBody)
	}
	if liveStatus != http.StatusOK {
		return fmt.Errorf("liveness returned %d", liveStatus)
	}
	if readyStatus != http.StatusOK {
		return fmt.Errorf("daemon not ready (%d)", readyStatus)
	}
	return nil
}

func parsePredicates(args []string) ([]core.Predicate, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no predicates given")
	}
	var out []core.Predicate
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "qty:"):
			body := strings.TrimPrefix(a, "qty:")
			pool, qtyStr, ok := strings.Cut(body, "=")
			if !ok {
				return nil, fmt.Errorf("bad quantity predicate %q (want qty:<pool>=<n>)", a)
			}
			qty, err := strconv.ParseInt(qtyStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad quantity in %q: %v", a, err)
			}
			out = append(out, core.Quantity(pool, qty))
		case strings.HasPrefix(a, "inst:"):
			out = append(out, core.Named(strings.TrimPrefix(a, "inst:")))
		case strings.HasPrefix(a, "prop:"):
			p, err := core.Property(strings.TrimPrefix(a, "prop:"))
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		default:
			return nil, fmt.Errorf("unknown predicate form %q (want qty:/inst:/prop:)", a)
		}
	}
	return out, nil
}

func cmdRequest(ctx context.Context, eng promises.Engine, d time.Duration, prio int, preemptible bool, releases, predArgs []string) error {
	preds, err := parsePredicates(predArgs)
	if err != nil {
		return err
	}
	resp, err := eng.Execute(ctx, core.Request{PromiseRequests: []core.PromiseRequest{{
		Predicates:  preds,
		Duration:    d,
		Releases:    releases,
		Priority:    prio,
		Preemptible: preemptible,
	}}})
	if err != nil {
		return err
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		return fmt.Errorf("rejected: %s", pr.Reason)
	}
	fmt.Printf("granted %s (expires %s)\n", pr.PromiseID, pr.Expires.Format(time.RFC3339))
	return nil
}

// cmdCheck reports each promise's usability in one round trip.
func cmdCheck(ctx context.Context, eng promises.Engine, client string, ids []string) error {
	errs, err := eng.CheckBatch(ctx, client, ids)
	if err != nil {
		return err
	}
	bad := false
	for i, cerr := range errs {
		switch {
		case cerr == nil:
			fmt.Printf("%s: usable\n", ids[i])
		case errors.Is(cerr, core.ErrPromiseReleased):
			fmt.Printf("%s: released\n", ids[i])
			bad = true
		case errors.Is(cerr, core.ErrPromiseExpired):
			fmt.Printf("%s: expired\n", ids[i])
			bad = true
		case errors.Is(cerr, core.ErrPromiseNotFound):
			fmt.Printf("%s: not found\n", ids[i])
			bad = true
		case errors.Is(cerr, core.ErrPromisePreempted):
			fmt.Printf("%s: preempted\n", ids[i])
			bad = true
		default:
			fmt.Printf("%s: %v\n", ids[i], cerr)
			bad = true
		}
	}
	if bad {
		return fmt.Errorf("some promises are not usable")
	}
	return nil
}

func parseEnv(env string, release bool) []core.EnvEntry {
	if env == "" {
		return nil
	}
	var out []core.EnvEntry
	for _, id := range strings.Split(env, ",") {
		out = append(out, core.EnvEntry{PromiseID: strings.TrimSpace(id), Release: release})
	}
	return out
}

func cmdInvoke(ctx context.Context, c *transport.Client, env string, release bool, action string, kvs []string) error {
	params := make(map[string]string, len(kvs))
	for _, kv := range kvs {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("bad parameter %q (want k=v)", kv)
		}
		params[k] = v
	}
	result, err := c.Invoke(ctx, parseEnv(env, release), action, params)
	if err != nil {
		return err
	}
	fmt.Println(result)
	return nil
}

func cmdBuy(ctx context.Context, c *transport.Client, pool, qtyStr, promiseID string) error {
	qty, err := strconv.ParseInt(qtyStr, 10, 64)
	if err != nil {
		return fmt.Errorf("bad quantity %q: %v", qtyStr, err)
	}
	result, err := c.Invoke(ctx,
		[]core.EnvEntry{{PromiseID: promiseID, Release: true}},
		"adjust-pool", map[string]string{"pool": pool, "delta": fmt.Sprintf("-%d", qty)},
	)
	if err != nil {
		return err
	}
	fmt.Printf("purchased %d of %s under %s; stock now %s\n", qty, pool, promiseID, result)
	return nil
}
