package main

import (
	"testing"

	"repro/internal/core"
)

func TestParsePredicates(t *testing.T) {
	preds, err := parsePredicates([]string{
		"qty:pink-widgets=5",
		"inst:room-212",
		"prop:floor = 5 and view",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 3 {
		t.Fatalf("preds = %d", len(preds))
	}
	if preds[0].View != core.AnonymousView || preds[0].Pool != "pink-widgets" || preds[0].Qty != 5 {
		t.Fatalf("qty pred = %+v", preds[0])
	}
	if preds[1].View != core.NamedView || preds[1].Instance != "room-212" {
		t.Fatalf("inst pred = %+v", preds[1])
	}
	if preds[2].View != core.PropertyView || preds[2].Source != "floor = 5 and view" {
		t.Fatalf("prop pred = %+v", preds[2])
	}
}

func TestParsePredicatesErrors(t *testing.T) {
	cases := [][]string{
		{},               // none
		{"qty:pool"},     // missing =
		{"qty:pool=abc"}, // non-numeric
		{"prop:(("},      // bad expression
		{"room-212"},     // unknown prefix
		{"banana:room"},  // unknown prefix
	}
	for _, args := range cases {
		if _, err := parsePredicates(args); err == nil {
			t.Errorf("parsePredicates(%v) succeeded", args)
		}
	}
}

func TestParseEnv(t *testing.T) {
	if parseEnv("", true) != nil {
		t.Fatal("empty env should be nil")
	}
	env := parseEnv("prm-1, prm-2 ,prm-3", true)
	if len(env) != 3 || env[1].PromiseID != "prm-2" || !env[2].Release {
		t.Fatalf("env = %+v", env)
	}
	env = parseEnv("prm-1", false)
	if env[0].Release {
		t.Fatal("release flag leaked")
	}
}
