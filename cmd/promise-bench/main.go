// Command promise-bench regenerates the evaluation tables recorded in
// EXPERIMENTS.md. Each experiment (E1–E11) validates one claim from the
// paper; DESIGN.md maps experiments to claims and modules.
//
// Usage:
//
//	promise-bench            run every experiment (full iteration counts)
//	promise-bench -quick     trimmed iteration counts (CI-sized)
//	promise-bench -e E4,E7   run selected experiments
//	promise-bench -list      list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "trimmed iteration counts")
	sel := flag.String("e", "", "comma-separated experiment ids (default all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiments.IDs()
	if *sel != "" {
		ids = nil
		for _, id := range strings.Split(*sel, ",") {
			id = strings.TrimSpace(strings.ToUpper(id))
			if experiments.Registry[id] == nil {
				fmt.Fprintf(os.Stderr, "promise-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		tbl, err := experiments.Registry[id](*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promise-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
	}
}
