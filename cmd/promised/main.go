// Command promised serves a promise manager over HTTP — the PM box of the
// paper's Figure 2 deployed as a standalone process. It hosts the standard
// resource-operation services and can seed demo resources at startup.
//
// Usage:
//
//	promised [-addr :8642] [-seed retail|hotel|bank] [-shards N] [-max-duration 10m]
//
// -shards defaults to GOMAXPROCS.
//
// State is striped across -shards independent shards (hash of pool or
// instance id) so parallel clients on different resources proceed
// concurrently; -shards 1 serializes every request through one store. Both
// configurations come from promises.Open and serve the same Engine surface,
// so clients cannot tell them apart.
//
// The wire protocol is the §6 promise protocol over XML; see
// internal/protocol. Try it with cmd/promisectl, or from code with
// promises.Open(promises.WithRemote(url)).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
	"repro/promises"
)

// localEngine is what the daemon needs beyond the client-facing Engine:
// periodic sweeping and resource seeding. Both local engines implement it.
type localEngine interface {
	promises.Engine
	Sweep() error
	LoadSeed(r io.Reader) (pools, instances int, err error)
	CreatePool(id string, onHand int64, props map[string]promises.Value) error
	CreateInstance(id string, props map[string]promises.Value) error
}

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	seed := flag.String("seed", "retail", "demo dataset to seed: retail, hotel, bank, none")
	seedFile := flag.String("seed-file", "", "XML resource seed file (see internal/resource seed format); overrides -seed")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "state shards; 1 serializes all requests through one store")
	maxDur := flag.Duration("max-duration", 10*time.Minute, "cap on granted promise durations")
	statsEvery := flag.Duration("sweep", 5*time.Second, "activity log interval (expiry itself fires at promise deadlines)")
	warn := flag.Duration("expiry-warning", 2*time.Second, "emit expiry-imminent events this long before each deadline; 0 disables")
	replayRing := flag.Int("replay-ring", 0, "event replay-ring capacity for SSE Last-Event-ID resume; 0 means the default (4096)")
	flag.Parse()

	eng, err := promises.Open(promises.WithShards(*shards), promises.WithMaxDuration(*maxDur),
		promises.WithExpiryWarning(*warn), promises.WithReplayRing(*replayRing))
	if err != nil {
		log.Fatalf("promised: %v", err)
	}
	m := eng.(localEngine)
	if *seedFile != "" {
		f, err := os.Open(*seedFile)
		if err != nil {
			log.Fatalf("promised: %v", err)
		}
		pools, instances, err := m.LoadSeed(f)
		_ = f.Close()
		if err != nil {
			log.Fatalf("promised: seed file %s: %v", *seedFile, err)
		}
		log.Printf("promised: seeded %d pools, %d instances from %s", pools, instances, *seedFile)
	} else if err := seedData(m, *seed); err != nil {
		log.Fatalf("promised: seeding %q: %v", *seed, err)
	}

	reg := service.NewRegistry()
	service.RegisterStandard(reg)

	// Expiry no longer needs a periodic sweep — the engine's expiry heap
	// lapses promises at their deadlines — so the ticker only logs activity.
	go func() {
		for range time.Tick(*statsEvery) {
			log.Printf("promised: %s", m.Stats())
		}
	}()

	srv := transport.NewServer(m, reg)
	log.Printf("promised: promise manager listening on %s (seed=%s, shards=%d, actions=%v)",
		*addr, *seed, *shards, reg.Names())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// seedData installs one of the demo datasets used throughout the examples,
// routing each pool and instance to its owning shard.
func seedData(m localEngine, name string) error {
	if name == "none" {
		return nil
	}
	switch name {
	case "retail":
		for pool, qty := range map[string]int64{
			"pink-widgets": 100, "blue-widgets": 100, "shipping-slots": 20,
		} {
			if err := m.CreatePool(pool, qty, nil); err != nil {
				return err
			}
		}
	case "hotel":
		for i := 1; i <= 20; i++ {
			floor := int64(1 + (i-1)/4)
			props := map[string]promises.Value{
				"floor":   promises.Int(floor),
				"view":    promises.Bool(i%3 == 0),
				"smoking": promises.Bool(i%7 == 0),
				"beds":    promises.Str([]string{"twin", "king", "single"}[i%3]),
			}
			if err := m.CreateInstance(fmt.Sprintf("room-%d%02d", floor, i%4+10), props); err != nil {
				return err
			}
		}
	case "bank":
		for _, acct := range []struct {
			id  string
			bal int64
		}{{"alice", 50000}, {"bob", 12000}, {"carol", 300}} {
			if err := m.CreatePool("acct-"+acct.id, acct.bal, nil); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown seed %q", name)
	}
	return nil
}
