// Command promised serves a promise manager over HTTP — the PM box of the
// paper's Figure 2 deployed as a standalone process. It hosts the standard
// resource-operation services and can seed demo resources at startup.
//
// Usage:
//
//	promised [-addr :8642] [-seed retail|hotel|bank] [-max-duration 10m]
//
// The wire protocol is the §6 promise protocol over XML; see
// internal/protocol. Try it with cmd/promisectl.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/predicate"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/promises"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	seed := flag.String("seed", "retail", "demo dataset to seed: retail, hotel, bank, none")
	seedFile := flag.String("seed-file", "", "XML resource seed file (see internal/resource seed format); overrides -seed")
	maxDur := flag.Duration("max-duration", 10*time.Minute, "cap on granted promise durations")
	sweepEvery := flag.Duration("sweep", 5*time.Second, "expiry sweep interval")
	flag.Parse()

	m, err := promises.New(promises.Config{MaxDuration: *maxDur})
	if err != nil {
		log.Fatalf("promised: %v", err)
	}
	if *seedFile != "" {
		f, err := os.Open(*seedFile)
		if err != nil {
			log.Fatalf("promised: %v", err)
		}
		pools, instances, err := m.Resources().LoadSeed(f)
		_ = f.Close()
		if err != nil {
			log.Fatalf("promised: seed file %s: %v", *seedFile, err)
		}
		log.Printf("promised: seeded %d pools, %d instances from %s", pools, instances, *seedFile)
	} else if err := seedData(m, *seed); err != nil {
		log.Fatalf("promised: seeding %q: %v", *seed, err)
	}

	reg := service.NewRegistry()
	service.RegisterStandard(reg)

	go func() {
		for range time.Tick(*sweepEvery) {
			if err := m.Sweep(); err != nil {
				log.Printf("promised: sweep: %v", err)
			}
			log.Printf("promised: %s", m.Stats())
		}
	}()

	srv := transport.NewServer(m, reg)
	log.Printf("promised: promise manager listening on %s (seed=%s, actions=%v)",
		*addr, *seed, reg.Names())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// seedData installs one of the demo datasets used throughout the examples.
func seedData(m *core.Manager, name string) error {
	if name == "none" {
		return nil
	}
	tx := m.Store().Begin(txn.Block)
	defer func() {
		if !tx.Done() {
			_ = tx.Abort()
		}
	}()
	rm := m.Resources()
	switch name {
	case "retail":
		if err := rm.CreatePool(tx, "pink-widgets", 100, nil); err != nil {
			return err
		}
		if err := rm.CreatePool(tx, "blue-widgets", 100, nil); err != nil {
			return err
		}
		if err := rm.CreatePool(tx, "shipping-slots", 20, nil); err != nil {
			return err
		}
	case "hotel":
		for i := 1; i <= 20; i++ {
			floor := int64(1 + (i-1)/4)
			props := map[string]predicate.Value{
				"floor":   predicate.Int(floor),
				"view":    predicate.Bool(i%3 == 0),
				"smoking": predicate.Bool(i%7 == 0),
				"beds":    predicate.Str([]string{"twin", "king", "single"}[i%3]),
			}
			if err := rm.CreateInstance(tx, fmt.Sprintf("room-%d%02d", floor, i%4+10), props); err != nil {
				return err
			}
		}
	case "bank":
		for _, acct := range []struct {
			id  string
			bal int64
		}{{"alice", 50000}, {"bob", 12000}, {"carol", 300}} {
			if err := rm.CreatePool(tx, "acct-"+acct.id, acct.bal, nil); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown seed %q", name)
	}
	return tx.Commit()
}
