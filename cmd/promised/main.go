// Command promised serves a promise manager over HTTP — the PM box of the
// paper's Figure 2 deployed as a standalone process. It hosts the standard
// resource-operation services and can seed demo resources at startup.
//
// Usage:
//
//	promised [-addr :8642] [-seed retail|hotel|bank] [-shards N] [-max-duration 10m]
//	         [-data-dir /var/lib/promised] [-sync always|interval|none]
//	         [-pprof-addr localhost:6060]
//
// -shards defaults to GOMAXPROCS.
//
// -pprof-addr serves net/http/pprof profiles (CPU, heap, goroutine,
// contention) on a second listener, separate from the client-facing
// protocol port so profiling access can be firewalled independently. Off
// by default; see docs/operations.md.
//
// State is striped across -shards independent shards (hash of pool or
// instance id) so parallel clients on different resources proceed
// concurrently; -shards 1 serializes every request through one store. Both
// configurations come from promises.Open and serve the same Engine surface,
// so clients cannot tell them apart.
//
// With -data-dir the daemon is durable: every committed transaction and
// published event is logged under the directory, and a restart recovers the
// previous process's state — promises, pools, escrow, soft locks, pending
// expiries, and the Watch replay ring — before listening (docs/operations.md
// has the full persistence story). A directory that already holds state is
// never re-seeded, and its manifest supplies the shard count when -shards is
// not given explicitly. SIGINT/SIGTERM drain in-flight requests, flush a
// final checkpoint, and exit cleanly.
//
// The wire protocol is the §6 promise protocol over XML; see
// internal/protocol. Try it with cmd/promisectl, or from code with
// promises.Open(promises.WithRemote(url)).
//
// Clustering: -node-id names the daemon as a cluster member (promise ids
// gain the "<id>!" namespace the federation layer routes by), and
//
//	promised -coordinator -nodes n0=http://h0:8642,n1=http://h1:8642 [-addr :8640]
//	         [-probe-every 1s] [-canary-max 250ms]
//
// runs the control-plane coordinator instead of a promise manager: it
// health-checks the named nodes, drains slow ones by migrating their
// promise slots to ring successors, and serves GET /cluster/status (text,
// or ?format=json). Grants never pass through the coordinator; point
// clients at the nodes (promises.WithCluster) or at the coordinator's
// status endpoint via promisectl -cluster, which discovers the node set
// from it. See docs/operations.md, "Running a cluster".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failpoint"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/promises"
)

// localEngine is what the daemon needs beyond the client-facing Engine:
// periodic sweeping and resource seeding. Both local engines implement it.
type localEngine interface {
	promises.Engine
	Sweep() error
	LoadSeed(r io.Reader) (pools, instances int, err error)
	CreatePool(id string, onHand int64, props map[string]promises.Value) error
	CreateInstance(id string, props map[string]promises.Value) error
}

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	seed := flag.String("seed", "retail", "demo dataset to seed: retail, hotel, bank, none")
	seedFile := flag.String("seed-file", "", "XML resource seed file (see internal/resource seed format); overrides -seed")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "state shards; 1 serializes all requests through one store")
	maxDur := flag.Duration("max-duration", 10*time.Minute, "cap on granted promise durations")
	statsEvery := flag.Duration("sweep", 5*time.Second, "activity log interval (expiry itself fires at promise deadlines)")
	warn := flag.Duration("expiry-warning", 2*time.Second, "emit expiry-imminent events this long before each deadline; 0 disables")
	replayRing := flag.Int("replay-ring", 0, "event replay-ring capacity for SSE Last-Event-ID resume; 0 means the default (4096)")
	dataDir := flag.String("data-dir", "", "durable data directory: log every commit, recover state on restart; empty runs in-memory")
	syncPol := flag.String("sync", "always", "with -data-dir, when log writes reach disk: always, interval, none")
	syncEvery := flag.Duration("sync-every", 0, "with -sync interval, the group-fsync cadence; 0 means 50ms")
	ckptEvery := flag.Duration("checkpoint-every", 0, "with -data-dir, how often the log compacts into a checkpoint; 0 means 1m, negative disables")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables profiling")
	reprobeEvery := flag.Duration("reprobe-every", 0, "with -data-dir, how often a degraded engine probes the directory for recovery; 0 means 5s")
	maxInflight := flag.Int("max-inflight", 0, "admission control: mutating requests dispatched concurrently; 0 disables the limiter")
	maxQueue := flag.Int("max-queue", 0, "with -max-inflight, requests waiting for a slot before 503; 0 means 2x max-inflight")
	retryAfter := flag.Duration("retry-after", 0, "with -max-inflight, the Retry-After hint stamped on shed responses; 0 means 1s")
	failpoints := flag.String("failpoints", "", "arm failpoints at startup, e.g. 'wal/sync=error(disk gone);transport/handle=sleep(50ms)'; PROMISES_FAILPOINTS env adds more")
	fpEndpoint := flag.Bool("failpoint-endpoint", false, "serve POST/GET/DELETE /failpoints to arm, list, and reset failpoints at runtime (chaos drills only)")
	nodeID := flag.String("node-id", "", "cluster member id; namespaces promise ids as '<id>!…' for federation routing")
	coordinator := flag.Bool("coordinator", false, "run the cluster coordinator (health checks, drains, /cluster/status) instead of a promise manager")
	nodes := flag.String("nodes", "", "with -coordinator: comma-separated id=url member list")
	probeEvery := flag.Duration("probe-every", time.Second, "with -coordinator: health-probe interval")
	canaryMax := flag.Duration("canary-max", 250*time.Millisecond, "with -coordinator: grant-latency budget before a node is considered slow")
	flag.Parse()

	// Failpoints arm before anything else runs so startup paths (recovery,
	// seeding) are drillable too. The flag and the environment both feed the
	// same harness; arming is a no-op unless specs are given.
	for _, spec := range []string{*failpoints, os.Getenv("PROMISES_FAILPOINTS")} {
		if spec == "" {
			continue
		}
		if err := failpoint.Arm(spec); err != nil {
			log.Fatalf("promised: -failpoints: %v", err)
		}
	}
	if armed := failpoint.List(); len(armed) > 0 {
		log.Printf("promised: failpoints armed: %s", strings.Join(armed, "; "))
	}

	if *coordinator {
		runCoordinator(*addr, *nodes, *probeEvery, *canaryMax)
		return
	}

	shardsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	// An existing data directory dictates its own shape: its manifest wins
	// over the -shards default, and its recovered resources must not be
	// seeded on top of.
	recovered := false
	opts := []promises.Option{promises.WithMaxDuration(*maxDur),
		promises.WithExpiryWarning(*warn), promises.WithReplayRing(*replayRing)}
	if *dataDir != "" {
		mf, err := core.ReadManifest(*dataDir)
		if err != nil {
			log.Fatalf("promised: reading %s: %v", *dataDir, err)
		}
		if mf != nil {
			recovered = true
			if !shardsSet {
				*shards = mf.Shards
			}
		}
		pol, err := promises.ParseSyncPolicy(*syncPol)
		if err != nil {
			log.Fatalf("promised: -sync: %v", err)
		}
		opts = append(opts, promises.WithDataDir(*dataDir), promises.WithSyncPolicy(pol))
		if *syncEvery != 0 {
			opts = append(opts, promises.WithSyncEvery(*syncEvery))
		}
		if *ckptEvery != 0 {
			opts = append(opts, promises.WithCheckpointEvery(*ckptEvery))
		}
		if *reprobeEvery != 0 {
			opts = append(opts, promises.WithReprobeEvery(*reprobeEvery))
		}
	}
	if *nodeID != "" {
		opts = append(opts, promises.WithNodeID(*nodeID))
	}
	eng, err := promises.Open(append(opts, promises.WithShards(*shards))...)
	if err != nil {
		log.Fatalf("promised: %v", err)
	}
	m := eng.(localEngine)
	switch {
	case recovered:
		log.Printf("promised: recovered state from %s (%d shards); skipping seed", *dataDir, *shards)
	case *seedFile != "":
		f, err := os.Open(*seedFile)
		if err != nil {
			log.Fatalf("promised: %v", err)
		}
		pools, instances, err := m.LoadSeed(f)
		_ = f.Close()
		if err != nil {
			log.Fatalf("promised: seed file %s: %v", *seedFile, err)
		}
		log.Printf("promised: seeded %d pools, %d instances from %s", pools, instances, *seedFile)
	default:
		if err := seedData(m, *seed); err != nil {
			log.Fatalf("promised: seeding %q: %v", *seed, err)
		}
	}

	reg := service.NewRegistry()
	service.RegisterStandard(reg)

	// Expiry no longer needs a periodic sweep — the engine's expiry heap
	// lapses promises at their deadlines — so the ticker only logs activity.
	go func() {
		for range time.Tick(*statsEvery) {
			log.Printf("promised: %s", m.Stats())
		}
	}()

	var srvOpts []transport.ServerOption
	if *maxInflight > 0 {
		srvOpts = append(srvOpts, transport.WithAdmission(transport.AdmissionConfig{
			MaxInFlight: *maxInflight,
			MaxQueue:    *maxQueue,
			RetryAfter:  *retryAfter,
		}))
		log.Printf("promised: admission control on (max-inflight=%d, max-queue=%d)", *maxInflight, *maxQueue)
	}
	if *fpEndpoint {
		srvOpts = append(srvOpts, transport.WithFailpointEndpoint())
		log.Printf("promised: /failpoints endpoint enabled")
	}
	srv := transport.NewServer(m, reg, srvOpts...)
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	// The profiler gets its own mux on its own listener: nothing pprof
	// ever shares a port with the client-facing protocol, so exposure is
	// an explicit operator decision (and firewallable separately).
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("promised: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("promised: pprof server: %v", err)
			}
		}()
	}

	// SIGINT/SIGTERM drain in-flight requests, then Close flushes a final
	// checkpoint so the next start replays no log tail.
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("promised: %v — shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("promised: shutdown: %v", err)
		}
	}()

	log.Printf("promised: promise manager listening on %s (seed=%s, shards=%d, actions=%v)",
		*addr, *seed, *shards, reg.Names())
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := m.Close(); err != nil {
		log.Printf("promised: close: %v", err)
		os.Exit(1)
	}
	log.Printf("promised: stopped")
}

// runCoordinator serves the cluster control plane: health probes over the
// member list, drains of slow nodes, and the /cluster/status endpoint.
func runCoordinator(addr, nodeList string, probeEvery, canaryMax time.Duration) {
	if nodeList == "" {
		log.Fatalf("promised: -coordinator requires -nodes id=url,...")
	}
	var ports []cluster.NodePort
	for _, ent := range strings.Split(nodeList, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok || id == "" || url == "" {
			log.Fatalf("promised: -nodes entry %q: want id=url", ent)
		}
		ports = append(ports, cluster.NewHTTPPort(id, url, "cluster-coordinator", nil))
	}
	coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
		Ports:     ports,
		CanaryMax: canaryMax,
	})
	if err != nil {
		log.Fatalf("promised: %v", err)
	}

	runCtx, cancel := context.WithCancel(context.Background())
	go coord.Run(runCtx, probeEvery)

	httpSrv := &http.Server{Addr: addr, Handler: coord.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("promised: %v — shutting down coordinator", s)
		cancel()
		ctx, stop := context.WithTimeout(context.Background(), 10*time.Second)
		defer stop()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("promised: shutdown: %v", err)
		}
	}()

	log.Printf("promised: cluster coordinator listening on %s (%d nodes, probe every %v)",
		addr, len(ports), probeEvery)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	log.Printf("promised: coordinator stopped")
}

// seedData installs one of the demo datasets used throughout the examples,
// routing each pool and instance to its owning shard.
func seedData(m localEngine, name string) error {
	if name == "none" {
		return nil
	}
	switch name {
	case "retail":
		for pool, qty := range map[string]int64{
			"pink-widgets": 100, "blue-widgets": 100, "shipping-slots": 20,
		} {
			if err := m.CreatePool(pool, qty, nil); err != nil {
				return err
			}
		}
	case "hotel":
		for i := 1; i <= 20; i++ {
			floor := int64(1 + (i-1)/4)
			props := map[string]promises.Value{
				"floor":   promises.Int(floor),
				"view":    promises.Bool(i%3 == 0),
				"smoking": promises.Bool(i%7 == 0),
				"beds":    promises.Str([]string{"twin", "king", "single"}[i%3]),
			}
			if err := m.CreateInstance(fmt.Sprintf("room-%d%02d", floor, i%4+10), props); err != nil {
				return err
			}
		}
	case "bank":
		for _, acct := range []struct {
			id  string
			bal int64
		}{{"alice", 50000}, {"bob", 12000}, {"carol", 300}} {
			if err := m.CreatePool("acct-"+acct.id, acct.bal, nil); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown seed %q", name)
	}
	return nil
}
