package main

import (
	"testing"

	"repro/internal/txn"
	"repro/promises"
)

func TestSeedDatasets(t *testing.T) {
	for _, name := range []string{"retail", "hotel", "bank", "none"} {
		m, err := promises.New(promises.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := seedData(m, name); err != nil {
			t.Fatalf("seed %q: %v", name, err)
		}
		tx := m.Store().Begin(txn.Block)
		pools, err := m.Resources().Pools(tx)
		if err != nil {
			t.Fatal(err)
		}
		instances, err := m.Resources().Instances(tx)
		if err != nil {
			t.Fatal(err)
		}
		_ = tx.Commit()
		switch name {
		case "retail":
			if len(pools) != 3 {
				t.Fatalf("retail pools = %d", len(pools))
			}
		case "hotel":
			if len(instances) != 20 {
				t.Fatalf("hotel rooms = %d", len(instances))
			}
		case "bank":
			if len(pools) != 3 {
				t.Fatalf("bank accounts = %d", len(pools))
			}
		case "none":
			if len(pools) != 0 || len(instances) != 0 {
				t.Fatal("none seeded something")
			}
		}
	}
}

func TestSeedUnknown(t *testing.T) {
	m, err := promises.New(promises.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedData(m, "galaxy"); err == nil {
		t.Fatal("unknown seed accepted")
	}
}

func TestSeededRetailIsPromisable(t *testing.T) {
	m, err := promises.New(promises.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := seedData(m, "retail"); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Execute(promises.Request{
		Client: "smoke",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Promises[0].Accepted {
		t.Fatalf("seeded stock not promisable: %s", resp.Promises[0].Reason)
	}
}
