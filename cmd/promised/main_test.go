package main

import (
	"context"
	"testing"

	"repro/promises"
)

func newSharded(t *testing.T) *promises.ShardedManager {
	t.Helper()
	m, err := promises.NewSharded(promises.ShardedConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSeedDatasets(t *testing.T) {
	for _, name := range []string{"retail", "hotel", "bank", "none"} {
		m := newSharded(t)
		if err := seedData(m, name); err != nil {
			t.Fatalf("seed %q: %v", name, err)
		}
		pools, err := m.Pools()
		if err != nil {
			t.Fatal(err)
		}
		instances, err := m.Instances()
		if err != nil {
			t.Fatal(err)
		}
		switch name {
		case "retail":
			if len(pools) != 3 {
				t.Fatalf("retail pools = %d", len(pools))
			}
		case "hotel":
			if len(instances) != 20 {
				t.Fatalf("hotel rooms = %d", len(instances))
			}
		case "bank":
			if len(pools) != 3 {
				t.Fatalf("bank accounts = %d", len(pools))
			}
		case "none":
			if len(pools) != 0 || len(instances) != 0 {
				t.Fatal("none seeded something")
			}
		}
	}
}

func TestSeedUnknown(t *testing.T) {
	if err := seedData(newSharded(t), "galaxy"); err == nil {
		t.Fatal("unknown seed accepted")
	}
}

func TestSeededRetailIsPromisable(t *testing.T) {
	m := newSharded(t)
	if err := seedData(m, "retail"); err != nil {
		t.Fatal(err)
	}
	resp, err := m.Execute(context.Background(), promises.Request{
		Client: "smoke",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Promises[0].Accepted {
		t.Fatalf("seeded stock not promisable: %s", resp.Promises[0].Reason)
	}
}
