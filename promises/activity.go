package promises

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file implements the §10 future-work item of integrating promises
// with business-activity-style coordination ("the transaction support found
// in standards like WS-BusinessActivity"): an Activity tracks the promises
// a long-running process obtains from any number of promise makers and
// guarantees all-or-release acquisition — if any requirement cannot be
// obtained, everything already held is handed back (compensation), since
// "the autonomy of service-providers means that there is no way to demand
// atomicity across long duration business processes" (§4).
//
// Promise makers are Engines: the same Activity code acquires from local
// managers and remote daemons interchangeably, which is the whole point of
// the unified surface.

// ErrActivityClosed is returned when obtaining through a completed or
// cancelled activity.
var ErrActivityClosed = errors.New("promises: activity already closed")

// heldPromise tracks one obtained promise and where to release it.
type heldPromise struct {
	engine Engine
	id     string
}

// Activity coordinates promise acquisition across engines for one
// long-running business process.
type Activity struct {
	client string

	mu     sync.Mutex
	held   []heldPromise
	closed bool
}

// NewActivity starts an activity for the given promise client identity.
func NewActivity(client string) *Activity {
	return &Activity{client: client}
}

// Obtain requests one promise from e and tracks it on success. A rejection
// is returned as-is (the caller may try alternatives, §4's "trying
// alternative resources and predicates"); transport errors propagate.
// Neither cancels the activity.
func (a *Activity) Obtain(ctx context.Context, e Engine, preds []Predicate, d time.Duration) (PromiseResponse, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return PromiseResponse{}, ErrActivityClosed
	}
	a.mu.Unlock()

	resp, err := e.Execute(ctx, Request{
		Client:          a.client,
		PromiseRequests: []PromiseRequest{{Predicates: preds, Duration: d}},
	})
	if err != nil {
		return PromiseResponse{}, err
	}
	pr := resp.Promises[0]
	if pr.Accepted {
		a.mu.Lock()
		if a.closed {
			// Lost the race with Cancel/Complete: hand it straight back.
			a.mu.Unlock()
			_ = e.Release(context.Background(), a.client, pr.PromiseID)
			return PromiseResponse{}, ErrActivityClosed
		}
		a.held = append(a.held, heldPromise{engine: e, id: pr.PromiseID})
		a.mu.Unlock()
	}
	return pr, nil
}

// MustObtain is Obtain that cancels the whole activity when the promise is
// rejected or errors, returning what went wrong. This is the all-or-release
// acquisition pattern of the §4 travel agent.
func (a *Activity) MustObtain(ctx context.Context, e Engine, preds []Predicate, d time.Duration) (PromiseResponse, error) {
	pr, err := a.Obtain(ctx, e, preds, d)
	if err != nil {
		_ = a.Cancel()
		return PromiseResponse{}, err
	}
	if !pr.Accepted {
		_ = a.Cancel()
		return pr, fmt.Errorf("promises: activity requirement rejected: %s", pr.Reason)
	}
	return pr, nil
}

// Held lists the tracked promise ids, in acquisition order.
func (a *Activity) Held() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.held))
	for i, h := range a.held {
		out[i] = h.id
	}
	return out
}

// Cancel releases every held promise, in reverse acquisition order
// (compensation). Errors are collected; releasing continues past failures
// so one unreachable engine cannot strand the rest. Compensation runs
// under context.Background(): the work must complete even when the
// process's own context has died.
func (a *Activity) Cancel() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	held := a.held
	a.held = nil
	a.mu.Unlock()

	var errs []error
	for i := len(held) - 1; i >= 0; i-- {
		if err := held[i].engine.Release(context.Background(), a.client, held[i].id); err != nil {
			errs = append(errs, fmt.Errorf("release %s: %w", held[i].id, err))
		}
	}
	return errors.Join(errs...)
}

// Complete closes the activity successfully, returning the held promise
// ids for the caller to consume (each under its own action+release, which
// remains per-service atomic — cross-service atomicity is exactly what the
// paper says cannot be demanded). After Complete, the activity no longer
// releases anything.
func (a *Activity) Complete() ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, ErrActivityClosed
	}
	a.closed = true
	out := make([]string, len(a.held))
	for i, h := range a.held {
		out[i] = h.id
	}
	a.held = nil
	return out, nil
}
