package promises

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
)

// This file implements the §10 future-work item of integrating promises
// with business-activity-style coordination ("the transaction support found
// in standards like WS-BusinessActivity"): an Activity tracks the promises
// a long-running process obtains from any number of promise makers and
// guarantees all-or-release acquisition — if any requirement cannot be
// obtained, everything already held is handed back (compensation), since
// "the autonomy of service-providers means that there is no way to demand
// atomicity across long duration business processes" (§4).

// PromiseMaker abstracts one promise-granting endpoint: a local Manager or
// a remote manager reached through the wire protocol.
type PromiseMaker interface {
	// RequestPromise submits one promise request for the given client.
	RequestPromise(client string, pr PromiseRequest) (PromiseResponse, error)
	// ReleasePromise hands a promise back.
	ReleasePromise(client string, id string) error
}

// LocalMaker adapts a Manager into a PromiseMaker.
type LocalMaker struct {
	M *Manager
}

// RequestPromise implements PromiseMaker.
func (l *LocalMaker) RequestPromise(client string, pr PromiseRequest) (PromiseResponse, error) {
	resp, err := l.M.Execute(Request{Client: client, PromiseRequests: []PromiseRequest{pr}})
	if err != nil {
		return PromiseResponse{}, err
	}
	return resp.Promises[0], nil
}

// ReleasePromise implements PromiseMaker.
func (l *LocalMaker) ReleasePromise(client, id string) error {
	resp, err := l.M.Execute(Request{Client: client, Env: []EnvEntry{{PromiseID: id, Release: true}}})
	if err != nil {
		return err
	}
	return resp.ActionErr
}

// RemoteMaker adapts a transport.Client into a PromiseMaker. The client's
// own identity is used; the per-call client argument must match it.
type RemoteMaker struct {
	C *transport.Client
}

// RequestPromise implements PromiseMaker.
func (r *RemoteMaker) RequestPromise(client string, pr PromiseRequest) (PromiseResponse, error) {
	if client != r.C.Client {
		return PromiseResponse{}, fmt.Errorf("%w: remote maker is bound to client %q, got %q",
			ErrBadRequest, r.C.Client, client)
	}
	res, err := r.C.Exchange([]PromiseRequest{pr}, nil, nil)
	if err != nil {
		return PromiseResponse{}, err
	}
	if len(res.Promises) != 1 {
		return PromiseResponse{}, fmt.Errorf("promises: got %d responses, want 1", len(res.Promises))
	}
	return res.Promises[0], nil
}

// ReleasePromise implements PromiseMaker.
func (r *RemoteMaker) ReleasePromise(client, id string) error {
	if client != r.C.Client {
		return fmt.Errorf("%w: remote maker is bound to client %q, got %q", ErrBadRequest, r.C.Client, client)
	}
	return r.C.Release(id)
}

// ErrActivityClosed is returned when obtaining through a completed or
// cancelled activity.
var ErrActivityClosed = errors.New("promises: activity already closed")

// heldPromise tracks one obtained promise and where to release it.
type heldPromise struct {
	maker PromiseMaker
	id    string
}

// Activity coordinates promise acquisition across managers for one
// long-running business process.
type Activity struct {
	client string

	mu     sync.Mutex
	held   []heldPromise
	closed bool
}

// NewActivity starts an activity for the given promise client identity.
func NewActivity(client string) *Activity {
	return &Activity{client: client}
}

// Obtain requests one promise from mk and tracks it on success. A
// rejection is returned as-is (the caller may try alternatives, §4's
// "trying alternative resources and predicates"); transport errors
// propagate. Neither cancels the activity.
func (a *Activity) Obtain(mk PromiseMaker, preds []Predicate, d time.Duration) (PromiseResponse, error) {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return PromiseResponse{}, ErrActivityClosed
	}
	a.mu.Unlock()

	pr, err := mk.RequestPromise(a.client, PromiseRequest{Predicates: preds, Duration: d})
	if err != nil {
		return PromiseResponse{}, err
	}
	if pr.Accepted {
		a.mu.Lock()
		if a.closed {
			// Lost the race with Cancel/Complete: hand it straight back.
			a.mu.Unlock()
			_ = mk.ReleasePromise(a.client, pr.PromiseID)
			return PromiseResponse{}, ErrActivityClosed
		}
		a.held = append(a.held, heldPromise{maker: mk, id: pr.PromiseID})
		a.mu.Unlock()
	}
	return pr, nil
}

// MustObtain is Obtain that cancels the whole activity when the promise is
// rejected or errors, returning what went wrong. This is the all-or-release
// acquisition pattern of the §4 travel agent.
func (a *Activity) MustObtain(mk PromiseMaker, preds []Predicate, d time.Duration) (PromiseResponse, error) {
	pr, err := a.Obtain(mk, preds, d)
	if err != nil {
		_ = a.Cancel()
		return PromiseResponse{}, err
	}
	if !pr.Accepted {
		_ = a.Cancel()
		return pr, fmt.Errorf("promises: activity requirement rejected: %s", pr.Reason)
	}
	return pr, nil
}

// Held lists the tracked promise ids, in acquisition order.
func (a *Activity) Held() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.held))
	for i, h := range a.held {
		out[i] = h.id
	}
	return out
}

// Cancel releases every held promise, in reverse acquisition order
// (compensation). Errors are collected; releasing continues past failures
// so one unreachable maker cannot strand the rest.
func (a *Activity) Cancel() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	held := a.held
	a.held = nil
	a.mu.Unlock()

	var errs []error
	for i := len(held) - 1; i >= 0; i-- {
		if err := held[i].maker.ReleasePromise(a.client, held[i].id); err != nil {
			errs = append(errs, fmt.Errorf("release %s: %w", held[i].id, err))
		}
	}
	return errors.Join(errs...)
}

// Complete closes the activity successfully, returning the held promise
// ids for the caller to consume (each under its own action+release, which
// remains per-service atomic — cross-service atomicity is exactly what the
// paper says cannot be demanded). After Complete, the activity no longer
// releases anything.
func (a *Activity) Complete() ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, ErrActivityClosed
	}
	a.closed = true
	out := make([]string, len(a.held))
	for i, h := range a.held {
		out[i] = h.id
	}
	a.held = nil
	return out, nil
}
