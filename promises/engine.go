package promises

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/transport"
)

// Engine is the unified, context-first surface of a promise maker (§2) —
// the one interface applications, suppliers and tools are written against,
// whether the maker is an in-process single store, an in-process sharded
// store, or a remote daemon reached over the §6 wire protocol:
//
//   - *Manager (promises.Open, single store) implements Engine;
//   - *ShardedManager (promises.Open with WithShards(n > 1)) implements
//     Engine;
//   - the remote client (promises.Open with WithRemote(url)) implements
//     Engine;
//   - the federated cluster engine (promises.Open with WithCluster(nodes))
//     implements Engine, routing each call across a multi-node deployment.
//
// The paper's §5 delegation model treats promise makers as interchangeable
// whether local or reached over the wire; Engine is that interchangeability
// as a type. Contexts bound every call: cancellation is honoured before
// work starts and, on a sharded engine, between per-shard reservations of a
// cross-shard grant — a dead client aborts the pipeline before anything is
// confirmed, leaking no state.
type Engine interface {
	// Execute processes one client message — any mix of promise requests,
	// an environment with release options, and an action (§6) — atomically.
	Execute(ctx context.Context, req Request) (*Response, error)
	// GrantBatch processes many independent promise requests for one
	// client, amortizing lock and transaction overhead; each request is
	// still individually atomic.
	GrantBatch(ctx context.Context, client string, reqs []PromiseRequest) ([]PromiseResponse, error)
	// CheckBatch reports, per promise id, whether the promise is currently
	// usable by client: nil, or the matching sentinel error. The outer
	// error reports a failure of the check itself (cancelled context, dead
	// transport), never a per-promise state.
	CheckBatch(ctx context.Context, client string, ids []string) ([]error, error)
	// Release hands back the named promises atomically: all released, or
	// none and the failure returned.
	Release(ctx context.Context, client string, ids ...string) error
	// Watch subscribes to the engine's promise lifecycle events — the §6
	// notification direction as an API. Events (Granted, Renewed, Released,
	// Expired, ExpiryImminent, Violated, Migrated) arrive on the returned
	// channel in one total order, with all events of one promise in
	// lifecycle order; Expired fires at the promise's deadline, driven by
	// the engine's expiry heap, not at the next request. The channel closes
	// when ctx is cancelled or, under WatchOptions.SlowDisconnect, when the
	// subscriber falls behind (with the default SlowDrop policy a slow
	// subscriber instead sees gaps in Event.Seq). A remote engine streams
	// the same sequence over SSE (GET /events) and resumes a broken
	// connection with a Last-Event-ID cursor.
	Watch(ctx context.Context, opts WatchOptions) (<-chan Event, error)
	// Stats snapshots the engine's activity counters.
	Stats() Stats
	// Audit runs a full consistency audit; an unhealthy report is a
	// report, not an error.
	Audit() (*AuditReport, error)
	// Close shuts the engine down cleanly. On a durable engine (Open with
	// WithDataDir) it takes a final checkpoint and closes the logs, so the
	// next Open recovers without replaying; on an in-memory engine it only
	// stops background expiry alarms; on a remote engine it releases idle
	// connections (the daemon's state is the daemon's). Close after
	// quiescing requests; it is idempotent.
	Close() error
}

// The four engine implementations, pinned at compile time.
var (
	_ Engine = (*core.Manager)(nil)
	_ Engine = (*core.ShardedManager)(nil)
	_ Engine = (*transport.Client)(nil)
	_ Engine = (*cluster.Engine)(nil)
)

// EngineSupplier adapts any Engine into a Supplier, so a delegation chain
// (§5) hangs off a local store, a sharded store or a remote daemon with
// zero call-site changes — the engine handed in is the only difference.
// It remembers which pool each upstream promise covers; ConsumePromise
// fulfils through the standard "adjust-pool" action, which the upstream
// engine must resolve (a daemon's standard handlers, or an engine opened
// with WithStandardActions).
type EngineSupplier struct {
	// E is the upstream promise maker.
	E Engine
	// Client is the identity used upstream.
	Client string

	mu    sync.Mutex
	pools map[string]string // upstream promise id -> pool
}

// RequestPromise implements Supplier.
func (s *EngineSupplier) RequestPromise(ctx context.Context, pool string, qty int64, d time.Duration) (string, error) {
	resp, err := s.E.Execute(ctx, Request{
		Client: s.Client,
		PromiseRequests: []PromiseRequest{{
			Predicates: []Predicate{Quantity(pool, qty)},
			Duration:   d,
		}},
	})
	if err != nil {
		return "", err
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		return "", fmt.Errorf("promises: upstream rejected %d of %q: %s", qty, pool, pr.Reason)
	}
	s.mu.Lock()
	if s.pools == nil {
		s.pools = make(map[string]string)
	}
	s.pools[pr.PromiseID] = pool
	s.mu.Unlock()
	return pr.PromiseID, nil
}

// ReleasePromise implements Supplier.
func (s *EngineSupplier) ReleasePromise(ctx context.Context, id string) error {
	s.mu.Lock()
	delete(s.pools, id)
	s.mu.Unlock()
	return s.E.Release(ctx, s.Client, id)
}

// ConsumePromise implements Supplier: qty units ship under the promise's
// protection and the promise is released atomically with the draw-down
// (§4, second requirement).
func (s *EngineSupplier) ConsumePromise(ctx context.Context, id string, qty int64) error {
	s.mu.Lock()
	pool, ok := s.pools[id]
	delete(s.pools, id)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("promises: unknown upstream promise %q", id)
	}
	resp, err := s.E.Execute(ctx, Request{
		Client:       s.Client,
		Env:          []EnvEntry{{PromiseID: id, Release: true}},
		ActionName:   "adjust-pool",
		ActionParams: map[string]string{"pool": pool, "delta": fmt.Sprintf("-%d", qty)},
	})
	if err != nil {
		return err
	}
	return resp.ActionErr
}
