// Package promises is the public API of the Promises library, a full
// implementation of "Isolation Support for Service-based Applications"
// (Greenfield, Fekete, Jang, Kuo, Nepal — CIDR 2007).
//
// A Promise is "an agreement between a client application (a 'promise
// client') and a service (a 'promise maker'). By accepting a promise
// request, a service guarantees that some set of conditions ('predicates')
// will be maintained over a set of resources for a specified period of
// time." (§2)
//
// # Quickstart
//
//	ctx := context.Background()
//	eng, err := promises.Open() // or WithShards(8), or WithRemote(url)
//	// seed a pool of 10 pink widgets (local engines only)
//	seeder, _ := promises.Seed(eng)
//	seeder.CreatePool("pink-widgets", 10, nil)
//
//	// Figure 1: ask for a promise that 5 widgets stay available
//	resp, _ := eng.Execute(ctx, promises.Request{
//	    Client: "order-process",
//	    PromiseRequests: []promises.PromiseRequest{{
//	        Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
//	        Duration:   time.Minute,
//	    }},
//	})
//	pr := resp.Promises[0] // pr.Accepted, pr.PromiseID
//
//	// later: purchase under the promise, releasing it atomically
//	eng.Execute(ctx, promises.Request{
//	    Client: "order-process",
//	    Env:    []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
//	    Action: func(ac *promises.ActionContext) (any, error) {
//	        _, err := ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
//	        return nil, err
//	    },
//	})
//
// Everything above runs unchanged against a sharded engine or a remote
// daemon (swap the closure Action for ActionName, which crosses the wire):
// Engine is one interface over all three deployments, with contexts
// plumbed end to end so a dead client cancels in-flight work.
//
// # Resource views
//
// Predicates come in the paper's three flavours (§3):
//
//   - Quantity(pool, n) — anonymous view: n interchangeable units.
//   - Named(instance)   — named view: one specific instance.
//   - Property(expr)    — property view: any instance satisfying a boolean
//     expression such as `floor = 5 and view and beds = "twin"`.
//
// # Events
//
// Engine.Watch subscribes to promise lifecycle transitions — granted,
// renewed, released, expired, violated, preempted (a spot hold revoked by
// a higher-priority grant; the event names the displacing promise and its
// tier), and (with WithExpiryWarning) expiry-imminent — pushed as they
// happen rather than polled. Expiry fires
// at each promise's deadline from the engine's expiry heap, so an expired
// event arrives with no request in flight. Subscriptions filter by client,
// promise id and event type (WatchOptions), and can replay recent history:
// every event carries a monotonic Seq, and WatchOptions.AfterSeq resumes
// from the bus's replay ring (sized by WithReplayRing) — the same cursor a
// remote engine's SSE stream exposes as Last-Event-ID.
//
// # Durability
//
// By default an engine's state lives in memory and dies with the process.
// WithDataDir(dir) makes it durable: every committed transaction and every
// published event is appended to a CRC-framed log under dir, and the log is
// periodically compacted into checkpoints (WithCheckpointEvery). Reopening
// the directory recovers the previous process's state — promises, pools,
// escrow ledger, soft locks, pending expiries, and the Watch replay ring —
// by loading the newest checkpoint and replaying the log tail through the
// normal commit path, so the recovered engine is equivalent to one that
// never stopped; Watch resume via AfterSeq/Last-Event-ID works across the
// restart.
//
// WithSyncPolicy chooses the durability/latency trade: SyncAlways (the
// default) fsyncs before a request is answered, so an acknowledged grant
// survives a crash; SyncInterval group-commits on a timer (WithSyncEvery)
// and can lose the last interval; SyncNone leaves flushing to the OS. A
// torn or corrupt log tail — a crash mid-write — is truncated on recovery:
// the interrupted commit is lost as a unit, never half-applied. Close
// flushes a final checkpoint so a clean restart replays no tail. One live
// process per directory; the directory's manifest pins its shard count.
// See docs/operations.md for the on-disk layout and the full recovery
// story.
//
// # Architecture
//
// The Manager follows the prototype of §8: promise table, escrow ledger and
// soft-lock tags live in one transactional store with the resource manager;
// every Execute call is a single ACID transaction; actions that violate
// outstanding promises are rolled back. internal/transport serves any
// Engine over HTTP using the §6 protocol elements; see cmd/promised, and
// docs/architecture.md for the layer-by-layer map.
package promises
