package promises

import (
	"context"
	"fmt"
	"time"
)

// NegotiationResult records the outcome of a Negotiate call.
type NegotiationResult struct {
	// Response is the final promise response (accepted or the last
	// rejection).
	Response PromiseResponse
	// Attempt is the 0-based index of the alternative that was granted;
	// len(alternatives) means the manager's counter-offer was taken; -1
	// means nothing was granted.
	Attempt int
	// Tried lists the rejection reasons of the failed attempts, in order.
	Tried []string
}

// Accepted reports whether any alternative was granted.
func (r *NegotiationResult) Accepted() bool { return r.Response.Accepted }

// Negotiate implements the client side of §3.3's negotiation pattern:
// "users may regard some properties as essential and others as desirable …
// the promise requestor and the promise maker negotiate to find a promise
// that is both satisfiable and maximally desirable. For example, the client
// may initially request a non-smoking room with a view and twin beds, and
// eventually accept a promise for a room with just twin beds."
//
// Alternatives are tried in order (most to least desirable); the first
// grant wins. If every alternative is rejected and acceptCounter is true,
// the manager's counter-offer from the final rejection (if any) is
// submitted as a last attempt — the §6 "accepted with the condition XX"
// loop closed from the client side.
//
// Negotiate drives any Engine — local, sharded or remote — and stops at
// the first context cancellation.
func Negotiate(ctx context.Context, e Engine, client string, d time.Duration, acceptCounter bool, alternatives ...[]Predicate) (*NegotiationResult, error) {
	if len(alternatives) == 0 {
		return nil, fmt.Errorf("%w: no alternatives to negotiate", ErrBadRequest)
	}
	result := &NegotiationResult{Attempt: -1}
	for i, preds := range alternatives {
		resp, err := e.Execute(ctx, Request{
			Client: client,
			PromiseRequests: []PromiseRequest{{
				RequestID:  fmt.Sprintf("negotiate-%d", i),
				Predicates: preds,
				Duration:   d,
			}},
		})
		if err != nil {
			return nil, err
		}
		pr := resp.Promises[0]
		if pr.Accepted {
			result.Response = pr
			result.Attempt = i
			return result, nil
		}
		result.Response = pr
		result.Tried = append(result.Tried, pr.Reason)
	}
	if acceptCounter && len(result.Response.Counter) > 0 {
		resp, err := e.Execute(ctx, Request{
			Client: client,
			PromiseRequests: []PromiseRequest{{
				RequestID:  "negotiate-counter",
				Predicates: result.Response.Counter,
				Duration:   d,
			}},
		})
		if err != nil {
			return nil, err
		}
		pr := resp.Promises[0]
		result.Response = pr
		if pr.Accepted {
			result.Attempt = len(alternatives)
			return result, nil
		}
		result.Tried = append(result.Tried, pr.Reason)
	}
	return result, nil
}
