// Package promises is the public API of the Promises library, a full
// implementation of "Isolation Support for Service-based Applications"
// (Greenfield, Fekete, Jang, Kuo, Nepal — CIDR 2007).
//
// A Promise is "an agreement between a client application (a 'promise
// client') and a service (a 'promise maker'). By accepting a promise
// request, a service guarantees that some set of conditions ('predicates')
// will be maintained over a set of resources for a specified period of
// time." (§2)
//
// # Quickstart
//
//	ctx := context.Background()
//	eng, err := promises.Open() // or WithShards(8), or WithRemote(url)
//	// seed a pool of 10 pink widgets (local engines only)
//	seeder, _ := promises.Seed(eng)
//	seeder.CreatePool("pink-widgets", 10, nil)
//
//	// Figure 1: ask for a promise that 5 widgets stay available
//	resp, _ := eng.Execute(ctx, promises.Request{
//	    Client: "order-process",
//	    PromiseRequests: []promises.PromiseRequest{{
//	        Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
//	        Duration:   time.Minute,
//	    }},
//	})
//	pr := resp.Promises[0] // pr.Accepted, pr.PromiseID
//
//	// later: purchase under the promise, releasing it atomically
//	eng.Execute(ctx, promises.Request{
//	    Client: "order-process",
//	    Env:    []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
//	    Action: func(ac *promises.ActionContext) (any, error) {
//	        _, err := ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
//	        return nil, err
//	    },
//	})
//
// Everything above runs unchanged against a sharded engine or a remote
// daemon (swap the closure Action for ActionName, which crosses the wire):
// Engine is one interface over all three deployments, with contexts
// plumbed end to end so a dead client cancels in-flight work.
//
// # Resource views
//
// Predicates come in the paper's three flavours (§3):
//
//   - Quantity(pool, n) — anonymous view: n interchangeable units.
//   - Named(instance)   — named view: one specific instance.
//   - Property(expr)    — property view: any instance satisfying a boolean
//     expression such as `floor = 5 and view and beds = "twin"`.
//
// # Architecture
//
// The Manager follows the prototype of §8: promise table, escrow ledger and
// soft-lock tags live in one transactional store with the resource manager;
// every Execute call is a single ACID transaction; actions that violate
// outstanding promises are rolled back. internal/transport serves any
// Engine over HTTP using the §6 protocol elements; see cmd/promised.
package promises

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/predicate"
)

// Re-exported core types. The library's behaviour is documented on the
// originals in repro/internal/core.
type (
	// Manager is the promise manager (§2, §8).
	Manager = core.Manager
	// Config configures a Manager.
	//
	// Deprecated: use Open with Options.
	Config = core.Config
	// ShardedManager stripes promise, escrow and soft-lock state across N
	// shards for concurrent throughput; see core.ShardedManager.
	ShardedManager = core.ShardedManager
	// ShardedConfig configures a ShardedManager.
	//
	// Deprecated: use Open with WithShards.
	ShardedConfig = core.ShardedConfig
	// Request is one client message (§6).
	Request = core.Request
	// Response is the manager's reply.
	Response = core.Response
	// PromiseRequest is one atomic <promise-request> (§4, §6).
	PromiseRequest = core.PromiseRequest
	// PromiseResponse is one <promise-response> (§6).
	PromiseResponse = core.PromiseResponse
	// EnvEntry names an environment promise with its release option.
	EnvEntry = core.EnvEntry
	// Predicate is one promised condition (§3).
	Predicate = core.Predicate
	// Promise is a granted promise.
	Promise = core.Promise
	// Action is an application operation run under the manager's
	// transaction (§8).
	Action = core.Action
	// NamedAction is a registered service operation taking string
	// parameters — the wire-representable action shape.
	NamedAction = core.NamedAction
	// ActionResolver maps action names to runnable operations; see
	// WithActions.
	ActionResolver = core.ActionResolver
	// ActionContext gives actions transactional resource access.
	ActionContext = core.ActionContext
	// Supplier is an upstream promise maker for delegation (§5).
	Supplier = core.Supplier
	// ManagerSupplier adapts a local Manager into a Supplier.
	//
	// Deprecated: use EngineSupplier, which fronts any Engine.
	ManagerSupplier = core.ManagerSupplier
	// View is a resource view (§3).
	View = core.View
	// State is a promise lifecycle state.
	State = core.State
	// PropertyMode selects the property-view technique (§5).
	PropertyMode = core.PropertyMode
	// Event is one promise lifecycle transition delivered by Engine.Watch.
	Event = core.Event
	// EventType names a lifecycle transition.
	EventType = core.EventType
	// WatchOptions filters and configures one Watch subscription.
	WatchOptions = core.WatchOptions
	// SlowPolicy selects the full-buffer behaviour of a subscription.
	SlowPolicy = core.SlowPolicy
	// Stats is a snapshot of manager activity counters.
	Stats = core.Stats
	// ShardStat is one shard's slice of a sharded manager's Stats.
	ShardStat = core.ShardStat
	// AuditReport summarises a consistency audit (Engine.Audit).
	AuditReport = core.AuditReport
	// Value is one typed property value for seeding instances; see Int,
	// Str and Bool.
	Value = predicate.Value
)

// Re-exported constants.
const (
	AnonymousView = core.AnonymousView
	NamedView     = core.NamedView
	PropertyView  = core.PropertyView

	Active   = core.Active
	Released = core.Released
	Expired  = core.Expired

	MatchingMode = core.MatchingMode
	FirstFitMode = core.FirstFitMode

	EventGranted        = core.EventGranted
	EventRenewed        = core.EventRenewed
	EventReleased       = core.EventReleased
	EventExpired        = core.EventExpired
	EventExpiryImminent = core.EventExpiryImminent
	EventViolated       = core.EventViolated
	EventMigrated       = core.EventMigrated

	SlowDrop       = core.SlowDrop
	SlowDisconnect = core.SlowDisconnect
)

// Re-exported sentinel errors.
var (
	ErrPromiseNotFound = core.ErrPromiseNotFound
	ErrPromiseExpired  = core.ErrPromiseExpired
	ErrPromiseReleased = core.ErrPromiseReleased
	ErrPromiseViolated = core.ErrPromiseViolated
	ErrBadRequest      = core.ErrBadRequest
)

// New creates a Manager. A zero Config builds a self-contained manager
// with a fresh store and resource manager.
//
// Deprecated: use Open, which returns the unified Engine surface; New
// remains for callers that need the concrete *Manager.
func New(cfg Config) (*Manager, error) { return core.New(cfg) }

// NewSharded creates a ShardedManager: a promise manager whose state is
// striped across cfg.Shards independent shards (default 8) so concurrent
// clients on different resources proceed in parallel.
//
// Deprecated: use Open with WithShards; NewSharded remains for callers
// that need the concrete *ShardedManager.
func NewSharded(cfg ShardedConfig) (*ShardedManager, error) { return core.NewSharded(cfg) }

// Quantity builds an anonymous-view predicate (§3.1): qty units of pool
// must remain available.
func Quantity(pool string, qty int64) Predicate { return core.Quantity(pool, qty) }

// Named builds a named-view predicate (§3.2) over one instance.
func Named(instance string) Predicate { return core.Named(instance) }

// Property builds a property-view predicate (§3.3) from an expression in
// the standard predicate syntax.
func Property(src string) (Predicate, error) { return core.Property(src) }

// MustProperty is Property that panics on parse errors; for statically
// known expressions.
func MustProperty(src string) Predicate { return core.MustProperty(src) }

// FromExpr interprets a lower-bound quantity expression such as
// "quantity >= 5" or "balance >= 100" as an anonymous predicate on pool.
func FromExpr(pool, src string) (Predicate, error) { return core.FromExpr(pool, src) }

// Int builds an integer property value for seeding instances.
func Int(v int64) Value { return predicate.Int(v) }

// Str builds a string property value for seeding instances.
func Str(v string) Value { return predicate.Str(v) }

// Bool builds a boolean property value for seeding instances.
func Bool(v bool) Value { return predicate.Bool(v) }

// SystemClock is the wall clock for WithClock.
func SystemClock() clock.Clock { return clock.System{} }

// FakeClock returns a manually advanced clock for tests and simulations.
func FakeClock() *clock.Fake { return clock.NewFake(clock.System{}.Now()) }
