// Re-exports, predicate builders and deprecated constructor shims; the
// package documentation lives in doc.go.

package promises

import (
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/predicate"
)

// Re-exported core types. The library's behaviour is documented on the
// originals in repro/internal/core.
type (
	// Manager is the promise manager (§2, §8).
	Manager = core.Manager
	// Config configures a Manager.
	//
	// Deprecated: use Open with Options.
	Config = core.Config
	// ShardedManager stripes promise, escrow and soft-lock state across N
	// shards for concurrent throughput; see core.ShardedManager.
	ShardedManager = core.ShardedManager
	// ShardedConfig configures a ShardedManager.
	//
	// Deprecated: use Open with WithShards.
	ShardedConfig = core.ShardedConfig
	// Request is one client message (§6).
	Request = core.Request
	// Response is the manager's reply.
	Response = core.Response
	// PromiseRequest is one atomic <promise-request> (§4, §6).
	PromiseRequest = core.PromiseRequest
	// PromiseResponse is one <promise-response> (§6).
	PromiseResponse = core.PromiseResponse
	// EnvEntry names an environment promise with its release option.
	EnvEntry = core.EnvEntry
	// Predicate is one promised condition (§3).
	Predicate = core.Predicate
	// Promise is a granted promise.
	Promise = core.Promise
	// Action is an application operation run under the manager's
	// transaction (§8).
	Action = core.Action
	// NamedAction is a registered service operation taking string
	// parameters — the wire-representable action shape.
	NamedAction = core.NamedAction
	// ActionResolver maps action names to runnable operations; see
	// WithActions.
	ActionResolver = core.ActionResolver
	// ActionContext gives actions transactional resource access.
	ActionContext = core.ActionContext
	// Supplier is an upstream promise maker for delegation (§5).
	Supplier = core.Supplier
	// ManagerSupplier adapts a local Manager into a Supplier.
	//
	// Deprecated: use EngineSupplier, which fronts any Engine.
	ManagerSupplier = core.ManagerSupplier
	// View is a resource view (§3).
	View = core.View
	// State is a promise lifecycle state.
	State = core.State
	// PropertyMode selects the property-view technique (§5).
	PropertyMode = core.PropertyMode
	// Event is one promise lifecycle transition delivered by Engine.Watch.
	Event = core.Event
	// EventType names a lifecycle transition.
	EventType = core.EventType
	// WatchOptions filters and configures one Watch subscription.
	WatchOptions = core.WatchOptions
	// SlowPolicy selects the full-buffer behaviour of a subscription.
	SlowPolicy = core.SlowPolicy
	// Stats is a snapshot of manager activity counters.
	Stats = core.Stats
	// ShardStat is one shard's slice of a sharded manager's Stats.
	ShardStat = core.ShardStat
	// AuditReport summarises a consistency audit (Engine.Audit).
	AuditReport = core.AuditReport
	// SyncPolicy selects when a durable engine's log writes reach stable
	// storage; see WithSyncPolicy.
	SyncPolicy = core.SyncPolicy
	// Value is one typed property value for seeding instances; see Int,
	// Str and Bool.
	Value = predicate.Value
)

// Re-exported constants.
const (
	AnonymousView = core.AnonymousView
	NamedView     = core.NamedView
	PropertyView  = core.PropertyView

	Active    = core.Active
	Released  = core.Released
	Expired   = core.Expired
	Preempted = core.Preempted

	MatchingMode = core.MatchingMode
	FirstFitMode = core.FirstFitMode

	EventGranted        = core.EventGranted
	EventRenewed        = core.EventRenewed
	EventReleased       = core.EventReleased
	EventExpired        = core.EventExpired
	EventExpiryImminent = core.EventExpiryImminent
	EventViolated       = core.EventViolated
	EventMigrated       = core.EventMigrated
	EventPreempted      = core.EventPreempted

	SlowDrop       = core.SlowDrop
	SlowDisconnect = core.SlowDisconnect

	// Sync policies for WithSyncPolicy. SyncAlways fsyncs before a request
	// is answered; SyncInterval group-commits on a timer (WithSyncEvery);
	// SyncNone leaves flushing to the OS.
	SyncAlways   = core.SyncAlways
	SyncInterval = core.SyncInterval
	SyncNone     = core.SyncNone
)

// Re-exported sentinel errors.
var (
	ErrPromiseNotFound  = core.ErrPromiseNotFound
	ErrPromiseExpired   = core.ErrPromiseExpired
	ErrPromiseReleased  = core.ErrPromiseReleased
	ErrPromiseViolated  = core.ErrPromiseViolated
	ErrPromisePreempted = core.ErrPromisePreempted
	ErrBadRequest       = core.ErrBadRequest
)

// New creates a Manager. A zero Config builds a self-contained manager
// with a fresh store and resource manager.
//
// Deprecated: use Open, which returns the unified Engine surface; New
// remains for callers that need the concrete *Manager.
func New(cfg Config) (*Manager, error) { return core.New(cfg) }

// NewSharded creates a ShardedManager: a promise manager whose state is
// striped across cfg.Shards independent shards (default 8) so concurrent
// clients on different resources proceed in parallel.
//
// Deprecated: use Open with WithShards; NewSharded remains for callers
// that need the concrete *ShardedManager.
func NewSharded(cfg ShardedConfig) (*ShardedManager, error) { return core.NewSharded(cfg) }

// Quantity builds an anonymous-view predicate (§3.1): qty units of pool
// must remain available.
func Quantity(pool string, qty int64) Predicate { return core.Quantity(pool, qty) }

// Named builds a named-view predicate (§3.2) over one instance.
func Named(instance string) Predicate { return core.Named(instance) }

// Property builds a property-view predicate (§3.3) from an expression in
// the standard predicate syntax.
func Property(src string) (Predicate, error) { return core.Property(src) }

// MustProperty is Property that panics on parse errors; for statically
// known expressions.
func MustProperty(src string) Predicate { return core.MustProperty(src) }

// FromExpr interprets a lower-bound quantity expression such as
// "quantity >= 5" or "balance >= 100" as an anonymous predicate on pool.
func FromExpr(pool, src string) (Predicate, error) { return core.FromExpr(pool, src) }

// ParseSyncPolicy parses "always", "interval" or "none" into the
// WithSyncPolicy vocabulary — the textual form the promised daemon's -sync
// flag and configuration files use.
func ParseSyncPolicy(s string) (SyncPolicy, error) { return core.ParseSyncPolicy(s) }

// Int builds an integer property value for seeding instances.
func Int(v int64) Value { return predicate.Int(v) }

// Str builds a string property value for seeding instances.
func Str(v string) Value { return predicate.Str(v) }

// Bool builds a boolean property value for seeding instances.
func Bool(v bool) Value { return predicate.Bool(v) }

// SystemClock is the wall clock for WithClock.
func SystemClock() clock.Clock { return clock.System{} }

// FakeClock returns a manually advanced clock for tests and simulations.
func FakeClock() *clock.Fake { return clock.NewFake(clock.System{}.Now()) }
