package promises

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/transport"
)

// options collects everything Open can configure; the zero value is a
// self-contained single-store engine.
type options struct {
	shards           int
	clk              clock.Clock
	defaultDuration  time.Duration
	maxDuration      time.Duration
	mode             PropertyMode
	modeSet          bool
	disablePostCheck bool
	maxRetries       int
	suppliers        map[string]Supplier
	actions          core.ActionResolver
	standardActions  bool
	expiryWarning    time.Duration
	replayRing       int
	defaultPriority  int

	dataDir         string
	syncPolicy      SyncPolicy
	syncPolicySet   bool
	syncEvery       time.Duration
	checkpointEvery time.Duration
	reprobeEvery    time.Duration

	remoteURL  string
	clientID   string
	httpClient *http.Client

	nodeID         string
	clusterNodes   map[string]string
	reconcileEvery time.Duration
}

// Option configures Open.
type Option func(*options)

// WithShards stripes the engine's state across n independent shards so
// concurrent clients on different resources proceed in parallel. n <= 1
// yields the single-store §8 reference engine. Local engines only.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithClock drives promise expiry from the given clock — tests and
// simulations pass FakeClock(). Local engines only.
func WithClock(c clock.Clock) Option { return func(o *options) { o.clk = c } }

// WithDefaultDuration sets the duration applied when a request names none.
// Local engines only.
func WithDefaultDuration(d time.Duration) Option {
	return func(o *options) { o.defaultDuration = d }
}

// WithMaxDuration caps granted durations (§6: the manager "might … offer a
// guarantee that expires sooner than the client wished"). Local engines
// only.
func WithMaxDuration(d time.Duration) Option { return func(o *options) { o.maxDuration = d } }

// WithPropertyMode selects the property-view technique (§5); the default is
// MatchingMode. Local engines only.
func WithPropertyMode(m PropertyMode) Option {
	return func(o *options) { o.mode = m; o.modeSet = true }
}

// WithSuppliers maps pool ids to upstream promise makers for delegation
// (§5); see EngineSupplier. Local engines only.
func WithSuppliers(s map[string]Supplier) Option { return func(o *options) { o.suppliers = s } }

// WithActions installs a resolver for Request.ActionName, so named service
// operations run locally exactly as a daemon runs wire actions. Local
// engines only.
func WithActions(r core.ActionResolver) Option { return func(o *options) { o.actions = r } }

// WithStandardActions installs the standard resource-operation handlers
// (adjust-pool, pool-level, take-instance, release-instance) as the
// engine's action resolver — the same set every promised daemon serves.
// Local engines only.
func WithStandardActions() Option { return func(o *options) { o.standardActions = true } }

// WithExpiryWarning makes the engine emit an EventExpiryImminent on Watch
// streams this long before each promise's deadline, so clients renew
// reactively instead of polling CheckBatch. Zero (the default) disables the
// warning. Local engines only; a remote engine streams whatever its daemon
// was configured with (promised -expiry-warning).
func WithExpiryWarning(d time.Duration) Option {
	return func(o *options) { o.expiryWarning = d }
}

// WithReplayRing sizes the event bus's replay ring: how many recent events
// a Watch subscriber can resume across with AfterSeq/Last-Event-ID before
// hitting a gap. Zero (the default) means core.DefaultReplayRing (4096).
// Size it to the longest outage times the event rate you need to survive.
// Local engines only; a remote engine resumes against whatever ring its
// daemon was started with (promised -replay-ring).
func WithReplayRing(n int) Option { return func(o *options) { o.replayRing = n } }

// WithDefaultPriority sets the priority tier stamped on requests that name
// none (PromiseRequest.Priority == 0). Higher tiers may displace
// lower-tier preemptible holds when capacity is exhausted; see
// docs/architecture.md ("Priority & preemption"). Local engines only.
func WithDefaultPriority(p int) Option { return func(o *options) { o.defaultPriority = p } }

// WithDataDir makes the engine durable: every committed transaction and
// published event is written to an append-only, CRC-framed log under dir,
// periodically compacted into checkpoints, and Open recovers the
// directory's state — promises, pools, escrow, soft locks, pending
// expiries, and the Watch replay ring — before serving, so the engine picks
// up where the previous process stopped (see docs/operations.md for the
// layout and recovery semantics). One live process per directory. Local
// engines only; a remote engine's durability belongs to its daemon
// (promised -data-dir).
func WithDataDir(dir string) Option { return func(o *options) { o.dataDir = dir } }

// WithSyncPolicy selects when log writes reach stable storage: SyncAlways
// (the default — a responded request is durable), SyncInterval (group
// fsync on a timer; see WithSyncEvery), or SyncNone (the OS decides).
// Requires WithDataDir.
func WithSyncPolicy(p SyncPolicy) Option {
	return func(o *options) { o.syncPolicy = p; o.syncPolicySet = true }
}

// WithSyncEvery sets the background fsync cadence under
// SyncInterval; zero means 50ms. Requires WithDataDir.
func WithSyncEvery(d time.Duration) Option { return func(o *options) { o.syncEvery = d } }

// WithCheckpointEvery sets the automatic checkpoint cadence — how often the
// log is compacted into a snapshot of current state. Zero means 1 minute; a
// negative duration disables automatic checkpoints (Checkpoint on the
// concrete engine still works). Requires WithDataDir.
func WithCheckpointEvery(d time.Duration) Option { return func(o *options) { o.checkpointEvery = d } }

// WithReprobeEvery sets how often a degraded engine — one whose log writes
// started failing, rejecting mutations with ErrDegraded while reads stay up
// — probes the data directory for recovery. A successful probe restores
// full service automatically. Zero means 5 seconds. Requires WithDataDir;
// see docs/operations.md, "Overload & degraded mode".
func WithReprobeEvery(d time.Duration) Option { return func(o *options) { o.reprobeEvery = d } }

// WithRemote makes Open return a client engine for the promised daemon at
// url (e.g. "http://localhost:8642") instead of constructing local state.
// Combine with WithClientID and WithHTTPClient only.
func WithRemote(url string) Option { return func(o *options) { o.remoteURL = url } }

// WithNodeID names this engine as a cluster member: promise ids are
// namespaced "<id>!…" so ids issued by different nodes never collide and
// self-describe their issuing node (how the cluster layer routes checks
// and releases). Forces the sharded engine even at one shard. The id must
// stay stable across restarts of a durable node. Local engines only.
func WithNodeID(id string) Option { return func(o *options) { o.nodeID = id } }

// WithCluster makes Open return a federated engine over the promised
// nodes in the given id -> base-URL map: single-node traffic routes to
// the consistent-hash owner in one round trip, and grants spanning nodes
// run the two-phase reserve/confirm path. Combine with WithClientID,
// WithHTTPClient and WithPropertyMode (which must mirror the nodes'
// mode) only.
func WithCluster(nodes map[string]string) Option {
	return func(o *options) { o.clusterNodes = nodes }
}

// WithReconcileEvery makes a cluster engine retry its queued compensations
// (partial-failure unwinds whose node was unreachable) on this cadence in
// the background, instead of only when Reconcile is called explicitly.
// Requires WithCluster.
func WithReconcileEvery(d time.Duration) Option { return func(o *options) { o.reconcileEvery = d } }

// WithClientID sets the default promise-client identity a remote engine
// stamps on requests that carry none.
func WithClientID(id string) Option { return func(o *options) { o.clientID = id } }

// WithHTTPClient sets the *http.Client a remote engine sends through.
func WithHTTPClient(h *http.Client) Option { return func(o *options) { o.httpClient = h } }

// Open builds a promise engine. With no options it is a self-contained
// single-store manager (fresh store and resource manager); WithShards(n)
// stripes state across n shards; WithRemote(url) returns a wire client for
// a running daemon. All three satisfy Engine, so everything downstream of
// Open is deployment-agnostic.
//
// Open replaces the former Config/ShardedConfig constructors; New and
// NewSharded remain as deprecated shims over the same machinery.
func Open(opts ...Option) (Engine, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.standardActions {
		if o.actions != nil {
			return nil, fmt.Errorf("promises: WithActions and WithStandardActions are mutually exclusive")
		}
		reg := service.NewRegistry()
		service.RegisterStandard(reg)
		o.actions = reg
	}
	if o.clusterNodes != nil {
		if o.remoteURL != "" {
			return nil, fmt.Errorf("promises: WithCluster and WithRemote are mutually exclusive")
		}
		if o.shards != 0 || o.clk != nil || o.defaultDuration != 0 || o.maxDuration != 0 ||
			o.suppliers != nil || o.actions != nil || o.maxRetries != 0 ||
			o.expiryWarning != 0 || o.replayRing != 0 || o.dataDir != "" || o.nodeID != "" ||
			o.defaultPriority != 0 {
			return nil, fmt.Errorf("promises: WithCluster cannot combine with local-engine options")
		}
		ports := make([]cluster.NodePort, 0, len(o.clusterNodes))
		for id, url := range o.clusterNodes {
			ports = append(ports, cluster.NewHTTPPort(id, url, o.clientID, o.httpClient))
		}
		return cluster.New(cluster.Config{Ports: ports, Mode: o.mode, ReconcileEvery: o.reconcileEvery})
	}
	if o.reconcileEvery != 0 {
		return nil, fmt.Errorf("promises: WithReconcileEvery requires WithCluster")
	}
	if o.remoteURL != "" {
		if o.shards != 0 || o.clk != nil || o.defaultDuration != 0 || o.maxDuration != 0 ||
			o.modeSet || o.suppliers != nil || o.actions != nil || o.maxRetries != 0 ||
			o.expiryWarning != 0 || o.replayRing != 0 || o.dataDir != "" || o.nodeID != "" ||
			o.defaultPriority != 0 {
			return nil, fmt.Errorf("promises: WithRemote(%q) cannot combine with local-engine options", o.remoteURL)
		}
		return &transport.Client{BaseURL: o.remoteURL, Client: o.clientID, HTTP: o.httpClient}, nil
	}
	if o.httpClient != nil {
		return nil, fmt.Errorf("promises: WithHTTPClient requires WithRemote")
	}
	if o.dataDir == "" && (o.syncPolicySet || o.syncEvery != 0 || o.checkpointEvery != 0 || o.reprobeEvery != 0) {
		return nil, fmt.Errorf("promises: sync, checkpoint, and reprobe options require WithDataDir")
	}
	if o.dataDir != "" {
		dur := core.DurabilityOptions{
			Dir:             o.dataDir,
			Sync:            o.syncPolicy,
			SyncEvery:       o.syncEvery,
			CheckpointEvery: o.checkpointEvery,
			ReprobeEvery:    o.reprobeEvery,
		}
		if o.shards > 1 || o.nodeID != "" {
			return core.OpenDurableSharded(core.ShardedConfig{
				Shards:           max(o.shards, 1),
				Clock:            o.clk,
				DefaultDuration:  o.defaultDuration,
				MaxDuration:      o.maxDuration,
				PropertyMode:     o.mode,
				DisablePostCheck: o.disablePostCheck,
				Suppliers:        o.suppliers,
				MaxRetries:       o.maxRetries,
				Actions:          o.actions,
				ExpiryWarning:    o.expiryWarning,
				ReplayRing:       o.replayRing,
				IDNamespace:      o.nodeID,
			}, dur)
		}
		return core.OpenDurable(core.Config{
			Clock:            o.clk,
			DefaultDuration:  o.defaultDuration,
			MaxDuration:      o.maxDuration,
			PropertyMode:     o.mode,
			DisablePostCheck: o.disablePostCheck,
			Suppliers:        o.suppliers,
			MaxRetries:       o.maxRetries,
			Actions:          o.actions,
			ExpiryWarning:    o.expiryWarning,
			ReplayRing:       o.replayRing,
			DefaultPriority:  o.defaultPriority,
		}, dur)
	}
	if o.shards > 1 || o.nodeID != "" {
		return core.NewSharded(core.ShardedConfig{
			Shards:           max(o.shards, 1),
			Clock:            o.clk,
			DefaultDuration:  o.defaultDuration,
			MaxDuration:      o.maxDuration,
			PropertyMode:     o.mode,
			DisablePostCheck: o.disablePostCheck,
			Suppliers:        o.suppliers,
			MaxRetries:       o.maxRetries,
			Actions:          o.actions,
			ExpiryWarning:    o.expiryWarning,
			ReplayRing:       o.replayRing,
			DefaultPriority:  o.defaultPriority,
			IDNamespace:      o.nodeID,
		})
	}
	return core.New(core.Config{
		Clock:            o.clk,
		DefaultDuration:  o.defaultDuration,
		MaxDuration:      o.maxDuration,
		PropertyMode:     o.mode,
		DisablePostCheck: o.disablePostCheck,
		Suppliers:        o.suppliers,
		MaxRetries:       o.maxRetries,
		Actions:          o.actions,
		ExpiryWarning:    o.expiryWarning,
		ReplayRing:       o.replayRing,
		DefaultPriority:  o.defaultPriority,
	})
}

// Seeder is the resource-seeding surface of the local engines: both
// *Manager and *ShardedManager implement it, so setup code can feed pools
// and instances to whatever Open returned. Remote engines do not seed —
// the daemon owns its resources (use its -seed/-seed-file flags).
type Seeder interface {
	CreatePool(id string, onHand int64, props map[string]Value) error
	CreateInstance(id string, props map[string]Value) error
	PoolLevel(pool string) (int64, error)
}

var (
	_ Seeder = (*core.Manager)(nil)
	_ Seeder = (*core.ShardedManager)(nil)
)

// Seed type-asserts an Engine to its seeding surface, failing with a clear
// error for remote engines.
func Seed(e Engine) (Seeder, error) {
	s, ok := e.(Seeder)
	if !ok {
		return nil, fmt.Errorf("promises: engine %T cannot seed resources locally; seed the daemon instead", e)
	}
	return s, nil
}
