package promises_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/predicate"
	"repro/internal/txn"
	"repro/promises"
)

func seedHotelAndStock(t *testing.T) *promises.Manager {
	t.Helper()
	m, err := promises.New(promises.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	rm := m.Resources()
	if err := rm.CreatePool(tx, "widgets", 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := rm.CreateInstance(tx, "room-7", map[string]predicate.Value{
		"smoking": predicate.Bool(false),
		"view":    predicate.Bool(false),
		"beds":    predicate.Str("twin"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNegotiateFirstAlternativeWins(t *testing.T) {
	m := seedHotelAndStock(t)
	res, err := promises.Negotiate(bg, m, "c", time.Minute, false,
		[]promises.Predicate{promises.MustProperty(`beds = "twin"`)},
		[]promises.Predicate{promises.MustProperty("true")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() || res.Attempt != 0 || len(res.Tried) != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestNegotiateFallsBackThroughWishes(t *testing.T) {
	// §3.3: non-smoking + view + twin -> non-smoking + twin -> twin.
	m := seedHotelAndStock(t)
	res, err := promises.Negotiate(bg, m, "c", time.Minute, false,
		[]promises.Predicate{promises.MustProperty(`not smoking and view and beds = "twin"`)},
		[]promises.Predicate{promises.MustProperty(`not smoking and beds = "twin"`)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() || res.Attempt != 1 {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Tried) != 1 {
		t.Fatalf("tried = %v", res.Tried)
	}
}

func TestNegotiateAllRejected(t *testing.T) {
	m := seedHotelAndStock(t)
	res, err := promises.Negotiate(bg, m, "c", time.Minute, false,
		[]promises.Predicate{promises.MustProperty("view")},
		[]promises.Predicate{promises.MustProperty("smoking")},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() || res.Attempt != -1 || len(res.Tried) != 2 {
		t.Fatalf("result = %+v", res)
	}
}

func TestNegotiateAcceptsCounterOffer(t *testing.T) {
	// 10 widgets on hand; asking for 15 then 12 fails, but the manager's
	// counter-offer of 10 is taken.
	m := seedHotelAndStock(t)
	res, err := promises.Negotiate(bg, m, "c", time.Minute, true,
		[]promises.Predicate{promises.Quantity("widgets", 15)},
		[]promises.Predicate{promises.Quantity("widgets", 12)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted() {
		t.Fatalf("counter not taken: %+v", res)
	}
	if res.Attempt != 2 { // == len(alternatives): the counter-offer
		t.Fatalf("attempt = %d", res.Attempt)
	}
	info, err := m.PromiseInfo(res.Response.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Predicates[0].Qty != 10 {
		t.Fatalf("counter quantity = %d, want 10", info.Predicates[0].Qty)
	}
}

func TestNegotiateCounterDeclined(t *testing.T) {
	m := seedHotelAndStock(t)
	res, err := promises.Negotiate(bg, m, "c", time.Minute, false,
		[]promises.Predicate{promises.Quantity("widgets", 15)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted() {
		t.Fatal("should not accept without counter")
	}
	if len(res.Response.Counter) != 1 || res.Response.Counter[0].Qty != 10 {
		t.Fatalf("counter = %+v", res.Response.Counter)
	}
}

func TestNegotiateNoAlternatives(t *testing.T) {
	m := seedHotelAndStock(t)
	if _, err := promises.Negotiate(bg, m, "c", time.Minute, false); !errors.Is(err, promises.ErrBadRequest) {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiateCounterRace(t *testing.T) {
	// The counter-offer is advisory, not a hold: if the capacity vanishes
	// between rejection and resubmission, the counter attempt fails too.
	m := seedHotelAndStock(t)
	// Ask for 15 -> counter 10, but drain 5 before accepting.
	resp, err := m.Execute(bg, promises.Request{
		Client: "rival",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 15)},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	counter := resp.Promises[0].Counter
	if len(counter) != 1 {
		t.Fatalf("counter = %v", counter)
	}
	// Rival takes 5.
	if _, err := m.Execute(bg, promises.Request{
		Client: "rival",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 5)},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	// Resubmitting the stale counter fails with a fresh counter of 5.
	resp, err = m.Execute(bg, promises.Request{
		Client:          "c",
		PromiseRequests: []promises.PromiseRequest{{Predicates: counter}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if pr.Accepted {
		t.Fatal("stale counter accepted")
	}
	if len(pr.Counter) != 1 || pr.Counter[0].Qty != 5 {
		t.Fatalf("fresh counter = %+v", pr.Counter)
	}
}
