package promises_test

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/promises"
)

// ExampleOpen shows the Figure 1 ordering flow against an engine from
// Open. Swap in WithShards(8) for a sharded store, or WithRemote(url) for
// a running daemon — the rest of the program is identical.
func ExampleOpen() {
	ctx := context.Background()
	eng, err := promises.Open()
	if err != nil {
		log.Fatal(err)
	}
	seeder, _ := promises.Seed(eng)
	_ = seeder.CreatePool("pink-widgets", 10, nil)

	resp, err := eng.Execute(ctx, promises.Request{
		Client: "order-process",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	pr := resp.Promises[0]
	fmt.Println("accepted:", pr.Accepted)

	// Purchase under the promise, releasing it atomically.
	resp, err = eng.Execute(ctx, promises.Request{
		Client: "order-process",
		Env:    []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			return ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
		},
	})
	if err != nil || resp.ActionErr != nil {
		log.Fatal(err, resp.ActionErr)
	}
	fmt.Println("stock now:", resp.ActionResult)
	// Output:
	// accepted: true
	// stock now: 5
}

// ExampleOpen_durable shows the persistence story end to end: a durable
// engine logs every commit under its data directory, Close flushes a final
// checkpoint, and reopening the same directory recovers the granted
// promise — the second process picks up exactly where the first stopped.
func ExampleOpen_durable() {
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "promised-data")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	eng, err := promises.Open(promises.WithDataDir(dir))
	if err != nil {
		log.Fatal(err)
	}
	seeder, _ := promises.Seed(eng)
	_ = seeder.CreatePool("pink-widgets", 10, nil)

	resp, err := eng.Execute(ctx, promises.Request{
		Client: "order-process",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
			Duration:   time.Hour,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	id := resp.Promises[0].PromiseID
	if err := eng.Close(); err != nil { // final checkpoint
		log.Fatal(err)
	}

	// A new process opening the same directory recovers the promise.
	eng, err = promises.Open(promises.WithDataDir(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	errs, err := eng.CheckBatch(ctx, "order-process", []string{id})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("promise survived restart:", errs[0] == nil)
	// Output:
	// promise survived restart: true
}

// ExampleEngine_checkBatch shows the batched promise-usability check every
// engine shape answers identically.
func ExampleEngine_checkBatch() {
	ctx := context.Background()
	eng, _ := promises.Open(promises.WithShards(4))
	seeder, _ := promises.Seed(eng)
	_ = seeder.CreatePool("seats", 3, nil)

	resp, _ := eng.Execute(ctx, promises.Request{
		Client: "agent",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("seats", 2)},
		}},
	})
	id := resp.Promises[0].PromiseID

	errs, _ := eng.CheckBatch(ctx, "agent", []string{id, "prm-unknown"})
	fmt.Println("held usable:", errs[0] == nil)
	fmt.Println("unknown usable:", errs[1] == nil)
	// Output:
	// held usable: true
	// unknown usable: false
}

// ExampleEngine_watch shows the subscription face: lifecycle transitions
// arrive as pushed events, and expiry fires at the promise's deadline —
// driven by the engine's expiry heap and clock, not by polling. The same
// Watch call works against a sharded engine (per-shard streams merge) and a
// remote daemon (streamed as SSE from GET /events).
func ExampleEngine_watch() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clk := promises.FakeClock()
	eng, err := promises.Open(
		promises.WithClock(clk),
		promises.WithExpiryWarning(10*time.Second), // push a warning before each deadline
	)
	if err != nil {
		log.Fatal(err)
	}
	seeder, _ := promises.Seed(eng)
	_ = seeder.CreatePool("seats", 5, nil)

	events, err := eng.Watch(ctx, promises.WatchOptions{Client: "agent"})
	if err != nil {
		log.Fatal(err)
	}

	resp, _ := eng.Execute(ctx, promises.Request{
		Client: "agent",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("seats", 2)},
			Duration:   time.Minute,
		}},
	})
	_ = resp

	// Crossing into the warning window pushes expiry-imminent; crossing
	// the deadline lapses the promise — no request in flight either time.
	clk.Advance(55 * time.Second)
	clk.Advance(10 * time.Second)
	for i := 0; i < 3; i++ {
		ev := <-events
		fmt.Println(ev.Type)
	}
	// Output:
	// granted
	// expiry-imminent
	// expired
}

// ExampleEngineSupplier builds a §5 delegation chain: the merchant covers
// shortfalls from an upstream engine. The upstream may be local or
// promises.Open(WithRemote(url)) — the chain code cannot tell.
func ExampleEngineSupplier() {
	ctx := context.Background()
	distributor, _ := promises.Open(promises.WithStandardActions())
	dSeed, _ := promises.Seed(distributor)
	_ = dSeed.CreatePool("widgets", 1000, nil)

	merchant, _ := promises.Open(promises.WithSuppliers(map[string]promises.Supplier{
		"widgets": &promises.EngineSupplier{E: distributor, Client: "merchant"},
	}))
	mSeed, _ := promises.Seed(merchant)
	_ = mSeed.CreatePool("widgets", 3, nil)

	// 8 wanted, 3 on hand: the merchant promises anyway, backed by a
	// 5-unit upstream promise.
	resp, _ := merchant.Execute(ctx, promises.Request{
		Client: "customer",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 8)},
		}},
	})
	fmt.Println("accepted:", resp.Promises[0].Accepted)
	// Output:
	// accepted: true
}
