package promises_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/promises"
)

func newSeeded(t *testing.T) *promises.Manager {
	t.Helper()
	m, err := promises.New(promises.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	if err := m.Resources().CreatePool(tx, "pink-widgets", 10, nil); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFacadeEndToEnd(t *testing.T) {
	m := newSeeded(t)
	resp, err := m.Execute(bg, promises.Request{
		Client: "order",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		t.Fatal(pr.Reason)
	}
	resp, err = m.Execute(bg, promises.Request{
		Client: "order",
		Env:    []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			_, err := ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
			return nil, err
		},
	})
	if err != nil || resp.ActionErr != nil {
		t.Fatalf("purchase: %v / %v", err, resp.ActionErr)
	}
}

func TestFacadeSentinelsMatchCore(t *testing.T) {
	m := newSeeded(t)
	resp, err := m.Execute(bg, promises.Request{
		Client: "c",
		Env:    []promises.EnvEntry{{PromiseID: "prm-404", Release: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(resp.ActionErr, promises.ErrPromiseNotFound) {
		t.Fatalf("ActionErr = %v", resp.ActionErr)
	}
}

func TestFacadeConstructors(t *testing.T) {
	if p := promises.Quantity("p", 3); p.View != promises.AnonymousView {
		t.Fatal("Quantity view")
	}
	if p := promises.Named("i"); p.View != promises.NamedView {
		t.Fatal("Named view")
	}
	p, err := promises.Property("floor = 5")
	if err != nil || p.View != promises.PropertyView {
		t.Fatalf("Property: %v", err)
	}
	if _, err := promises.Property("(("); err == nil {
		t.Fatal("bad property accepted")
	}
	q, err := promises.FromExpr("acct", "balance >= 100")
	if err != nil || q.Qty != 100 {
		t.Fatalf("FromExpr: %+v %v", q, err)
	}
	if promises.MustProperty("view").View != promises.PropertyView {
		t.Fatal("MustProperty view")
	}
}

func TestFacadeClocks(t *testing.T) {
	fc := promises.FakeClock()
	before := fc.Now()
	fc.Advance(time.Hour)
	if !fc.Now().After(before) {
		t.Fatal("fake clock did not advance")
	}
	if promises.SystemClock().Now().IsZero() {
		t.Fatal("system clock zero")
	}
}

// ExampleNew demonstrates the Figure 1 ordering flow through the public
// API.
func ExampleNew() {
	m, _ := promises.New(promises.Config{})
	tx := m.Store().Begin(txn.Block)
	_ = m.Resources().CreatePool(tx, "pink-widgets", 10, nil)
	_ = tx.Commit()

	resp, _ := m.Execute(bg, promises.Request{
		Client: "order-process",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("pink-widgets", 5)},
		}},
	})
	pr := resp.Promises[0]
	fmt.Println("accepted:", pr.Accepted)

	resp, _ = m.Execute(bg, promises.Request{
		Client: "order-process",
		Env:    []promises.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
		Action: func(ac *promises.ActionContext) (any, error) {
			level, err := ac.Resources.AdjustPool(ac.Tx, "pink-widgets", -5)
			return level, err
		},
	})
	fmt.Println("stock after purchase:", resp.ActionResult)
	// Output:
	// accepted: true
	// stock after purchase: 5
}
