package promises_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
	"repro/promises"
)

var bg = context.Background()

// inspector is the introspection surface of the local engines.
type inspector interface {
	PromiseInfo(id string) (promises.Promise, error)
	ActivePromises() ([]promises.Promise, error)
}

func newEngineWorld(t *testing.T, pools map[string]int64) promises.Engine {
	t.Helper()
	eng, err := promises.Open()
	if err != nil {
		t.Fatal(err)
	}
	seeder, err := promises.Seed(eng)
	if err != nil {
		t.Fatal(err)
	}
	for pool, qty := range pools {
		if err := seeder.CreatePool(pool, qty, nil); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func TestActivityAllOrReleaseSuccess(t *testing.T) {
	// §4's travel agent across three autonomous services.
	airline := newEngineWorld(t, map[string]int64{"seats": 2})
	cars := newEngineWorld(t, map[string]int64{"cars": 1})
	hotel := newEngineWorld(t, map[string]int64{"rooms": 5})

	a := promises.NewActivity("agent")
	for _, leg := range []struct {
		e    promises.Engine
		pool string
	}{{airline, "seats"}, {cars, "cars"}, {hotel, "rooms"}} {
		if _, err := a.MustObtain(bg, leg.e,
			[]promises.Predicate{promises.Quantity(leg.pool, 1)}, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	held, err := a.Complete()
	if err != nil {
		t.Fatal(err)
	}
	if len(held) != 3 {
		t.Fatalf("held = %v", held)
	}
	// Promises remain active after completion: the agent consumes them.
	for i, e := range []promises.Engine{airline, cars, hotel} {
		info, err := e.(inspector).PromiseInfo(held[i])
		if err != nil {
			t.Fatal(err)
		}
		if info.State != promises.Active {
			t.Fatalf("leg %d state = %v", i, info.State)
		}
	}
}

func TestActivityCompensatesOnFailure(t *testing.T) {
	airline := newEngineWorld(t, map[string]int64{"seats": 2})
	cars := newEngineWorld(t, map[string]int64{"cars": 0}) // no cars anywhere

	a := promises.NewActivity("agent")
	if _, err := a.MustObtain(bg, airline,
		[]promises.Predicate{promises.Quantity("seats", 1)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	seatID := a.Held()[0]
	_, err := a.MustObtain(bg, cars,
		[]promises.Predicate{promises.Quantity("cars", 1)}, time.Minute)
	if err == nil {
		t.Fatal("car leg should fail")
	}
	// The seat promise was compensated.
	info, err := airline.(inspector).PromiseInfo(seatID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != promises.Released {
		t.Fatalf("seat promise state = %v, want released", info.State)
	}
	// The activity is closed.
	if _, err := a.Obtain(bg, airline,
		[]promises.Predicate{promises.Quantity("seats", 1)}, time.Minute); !errors.Is(err, promises.ErrActivityClosed) {
		t.Fatalf("obtain after cancel: %v", err)
	}
	if _, err := a.Complete(); !errors.Is(err, promises.ErrActivityClosed) {
		t.Fatalf("complete after cancel: %v", err)
	}
	if err := a.Cancel(); err != nil {
		t.Fatalf("idempotent cancel: %v", err)
	}
}

func TestActivityObtainToleratesRejection(t *testing.T) {
	// Plain Obtain does not cancel: the caller tries an alternative (§4's
	// "trying alternative resources and predicates").
	e := newEngineWorld(t, map[string]int64{"cars": 0, "trains": 5})
	a := promises.NewActivity("agent")
	pr, err := a.Obtain(bg, e, []promises.Predicate{promises.Quantity("cars", 1)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Accepted {
		t.Fatal("no cars exist")
	}
	pr, err = a.Obtain(bg, e, []promises.Predicate{promises.Quantity("trains", 1)}, time.Minute)
	if err != nil || !pr.Accepted {
		t.Fatalf("train: %+v %v", pr, err)
	}
	if len(a.Held()) != 1 {
		t.Fatalf("held = %v", a.Held())
	}
}

func TestActivityOverHTTP(t *testing.T) {
	// The same Activity code acquires from remote engines: the makers are
	// promises.Open(WithRemote(url)) — swapping local for remote is a
	// constructor change, not a call-site change.
	airline := newEngineWorld(t, map[string]int64{"seats": 1})
	hotel := newEngineWorld(t, map[string]int64{"rooms": 1})
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	airSrv := httptest.NewServer(transport.NewServer(airline.(transport.Engine), reg).Handler())
	defer airSrv.Close()
	hotSrv := httptest.NewServer(transport.NewServer(hotel.(transport.Engine), reg).Handler())
	defer hotSrv.Close()

	a := promises.NewActivity("agent")
	airEng, err := promises.Open(promises.WithRemote(airSrv.URL), promises.WithClientID("agent"))
	if err != nil {
		t.Fatal(err)
	}
	hotEng, err := promises.Open(promises.WithRemote(hotSrv.URL), promises.WithClientID("agent"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.MustObtain(bg, airEng, []promises.Predicate{promises.Quantity("seats", 1)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MustObtain(bg, hotEng, []promises.Predicate{promises.Quantity("rooms", 1)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	held := a.Held()
	if err := a.Cancel(); err != nil {
		t.Fatal(err)
	}
	// Both remote promises released.
	if info, _ := airline.(inspector).PromiseInfo(held[0]); info.State != promises.Released {
		t.Fatalf("airline promise = %v", info.State)
	}
	if info, _ := hotel.(inspector).PromiseInfo(held[1]); info.State != promises.Released {
		t.Fatalf("hotel promise = %v", info.State)
	}
}

func TestActivityConcurrentObtainAndCancel(t *testing.T) {
	// Obtain racing Cancel must never leak: either the promise is tracked
	// and released by Cancel, or Obtain releases it itself.
	e := newEngineWorld(t, map[string]int64{"p": 1000})
	for round := 0; round < 20; round++ {
		a := promises.NewActivity("agent")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = a.Obtain(bg, e, []promises.Predicate{promises.Quantity("p", 1)}, time.Minute)
		}()
		go func() {
			defer wg.Done()
			_ = a.Cancel()
		}()
		wg.Wait()
		_ = a.Cancel()
		// Any tracked-but-uncancelled promise would show up here.
		list, err := e.(inspector).ActivePromises()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range list {
			// A promise may legitimately remain if Obtain finished before
			// Cancel started... but then Cancel would have released it.
			// So nothing may remain.
			t.Fatalf("round %d leaked promise %s", round, p.ID)
		}
	}
}
