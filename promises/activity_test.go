package promises_test

import (
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/promises"
)

func newMakerWorld(t *testing.T, pools map[string]int64) *promises.Manager {
	t.Helper()
	m, err := promises.New(promises.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	for pool, qty := range pools {
		if err := m.Resources().CreatePool(tx, pool, qty, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestActivityAllOrReleaseSuccess(t *testing.T) {
	// §4's travel agent across three autonomous services.
	airline := newMakerWorld(t, map[string]int64{"seats": 2})
	cars := newMakerWorld(t, map[string]int64{"cars": 1})
	hotel := newMakerWorld(t, map[string]int64{"rooms": 5})

	a := promises.NewActivity("agent")
	for _, leg := range []struct {
		m    *promises.Manager
		pool string
	}{{airline, "seats"}, {cars, "cars"}, {hotel, "rooms"}} {
		if _, err := a.MustObtain(&promises.LocalMaker{M: leg.m},
			[]promises.Predicate{promises.Quantity(leg.pool, 1)}, time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	held, err := a.Complete()
	if err != nil {
		t.Fatal(err)
	}
	if len(held) != 3 {
		t.Fatalf("held = %v", held)
	}
	// Promises remain active after completion: the agent consumes them.
	for i, m := range []*promises.Manager{airline, cars, hotel} {
		info, err := m.PromiseInfo(held[i])
		if err != nil {
			t.Fatal(err)
		}
		if info.State != promises.Active {
			t.Fatalf("leg %d state = %v", i, info.State)
		}
	}
}

func TestActivityCompensatesOnFailure(t *testing.T) {
	airline := newMakerWorld(t, map[string]int64{"seats": 2})
	cars := newMakerWorld(t, map[string]int64{"cars": 0}) // no cars anywhere

	a := promises.NewActivity("agent")
	if _, err := a.MustObtain(&promises.LocalMaker{M: airline},
		[]promises.Predicate{promises.Quantity("seats", 1)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	seatID := a.Held()[0]
	_, err := a.MustObtain(&promises.LocalMaker{M: cars},
		[]promises.Predicate{promises.Quantity("cars", 1)}, time.Minute)
	if err == nil {
		t.Fatal("car leg should fail")
	}
	// The seat promise was compensated.
	info, err := airline.PromiseInfo(seatID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != promises.Released {
		t.Fatalf("seat promise state = %v, want released", info.State)
	}
	// The activity is closed.
	if _, err := a.Obtain(&promises.LocalMaker{M: airline},
		[]promises.Predicate{promises.Quantity("seats", 1)}, time.Minute); !errors.Is(err, promises.ErrActivityClosed) {
		t.Fatalf("obtain after cancel: %v", err)
	}
	if _, err := a.Complete(); !errors.Is(err, promises.ErrActivityClosed) {
		t.Fatalf("complete after cancel: %v", err)
	}
	if err := a.Cancel(); err != nil {
		t.Fatalf("idempotent cancel: %v", err)
	}
}

func TestActivityObtainToleratesRejection(t *testing.T) {
	// Plain Obtain does not cancel: the caller tries an alternative (§4's
	// "trying alternative resources and predicates").
	m := newMakerWorld(t, map[string]int64{"cars": 0, "trains": 5})
	a := promises.NewActivity("agent")
	mk := &promises.LocalMaker{M: m}
	pr, err := a.Obtain(mk, []promises.Predicate{promises.Quantity("cars", 1)}, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Accepted {
		t.Fatal("no cars exist")
	}
	pr, err = a.Obtain(mk, []promises.Predicate{promises.Quantity("trains", 1)}, time.Minute)
	if err != nil || !pr.Accepted {
		t.Fatalf("train: %+v %v", pr, err)
	}
	if len(a.Held()) != 1 {
		t.Fatalf("held = %v", a.Held())
	}
}

func TestActivityOverHTTP(t *testing.T) {
	airline := newMakerWorld(t, map[string]int64{"seats": 1})
	hotel := newMakerWorld(t, map[string]int64{"rooms": 1})
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	airSrv := httptest.NewServer(transport.NewServer(airline, reg).Handler())
	defer airSrv.Close()
	hotSrv := httptest.NewServer(transport.NewServer(hotel, reg).Handler())
	defer hotSrv.Close()

	a := promises.NewActivity("agent")
	airMk := &promises.RemoteMaker{C: &transport.Client{BaseURL: airSrv.URL, Client: "agent"}}
	hotMk := &promises.RemoteMaker{C: &transport.Client{BaseURL: hotSrv.URL, Client: "agent"}}
	if _, err := a.MustObtain(airMk, []promises.Predicate{promises.Quantity("seats", 1)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := a.MustObtain(hotMk, []promises.Predicate{promises.Quantity("rooms", 1)}, time.Minute); err != nil {
		t.Fatal(err)
	}
	held := a.Held()
	if err := a.Cancel(); err != nil {
		t.Fatal(err)
	}
	// Both remote promises released.
	if info, _ := airline.PromiseInfo(held[0]); info.State != promises.Released {
		t.Fatalf("airline promise = %v", info.State)
	}
	if info, _ := hotel.PromiseInfo(held[1]); info.State != promises.Released {
		t.Fatalf("hotel promise = %v", info.State)
	}
}

func TestRemoteMakerIdentityGuard(t *testing.T) {
	m := newMakerWorld(t, map[string]int64{"p": 1})
	reg := service.NewRegistry()
	srv := httptest.NewServer(transport.NewServer(m, reg).Handler())
	defer srv.Close()
	mk := &promises.RemoteMaker{C: &transport.Client{BaseURL: srv.URL, Client: "alice"}}
	if _, err := mk.RequestPromise("bob", promises.PromiseRequest{
		Predicates: []promises.Predicate{promises.Quantity("p", 1)},
	}); !errors.Is(err, promises.ErrBadRequest) {
		t.Fatalf("identity mismatch: %v", err)
	}
	if err := mk.ReleasePromise("bob", "prm-1"); !errors.Is(err, promises.ErrBadRequest) {
		t.Fatalf("identity mismatch on release: %v", err)
	}
}

func TestActivityConcurrentObtainAndCancel(t *testing.T) {
	// Obtain racing Cancel must never leak: either the promise is tracked
	// and released by Cancel, or Obtain releases it itself.
	m := newMakerWorld(t, map[string]int64{"p": 1000})
	mk := &promises.LocalMaker{M: m}
	for round := 0; round < 20; round++ {
		a := promises.NewActivity("agent")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = a.Obtain(mk, []promises.Predicate{promises.Quantity("p", 1)}, time.Minute)
		}()
		go func() {
			defer wg.Done()
			_ = a.Cancel()
		}()
		wg.Wait()
		_ = a.Cancel()
		// Any tracked-but-uncancelled promise would show up here.
		list, err := m.ActivePromises()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range list {
			// A promise may legitimately remain if Obtain finished before
			// Cancel started... but then Cancel would have released it.
			// So nothing may remain.
			t.Fatalf("round %d leaked promise %s", round, p.ID)
		}
	}
}
