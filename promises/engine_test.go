package promises_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/transport"
	"repro/promises"
)

// openLocal builds a local engine (shape chosen by opts) with one pool.
func openLocal(t *testing.T, pool string, qty int64, opts ...promises.Option) promises.Engine {
	t.Helper()
	eng, err := promises.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	seeder, err := promises.Seed(eng)
	if err != nil {
		t.Fatal(err)
	}
	if err := seeder.CreatePool(pool, qty, nil); err != nil {
		t.Fatal(err)
	}
	return eng
}

// serveEngine exposes an engine over HTTP with the standard actions and
// returns a remote engine for it.
func serveEngine(t *testing.T, eng promises.Engine, clientID string) promises.Engine {
	t.Helper()
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	srv := httptest.NewServer(transport.NewServer(eng.(transport.Engine), reg).Handler())
	t.Cleanup(srv.Close)
	remote, err := promises.Open(promises.WithRemote(srv.URL), promises.WithClientID(clientID))
	if err != nil {
		t.Fatal(err)
	}
	return remote
}

// TestEngineInterchangeability drives one scripted client workload through
// all three engine shapes — single store, sharded, remote — with the exact
// same call sites, and asserts identical outcomes.
func TestEngineInterchangeability(t *testing.T) {
	shapes := []struct {
		name string
		mk   func(t *testing.T) promises.Engine
	}{
		{"single", func(t *testing.T) promises.Engine {
			return openLocal(t, "w", 10, promises.WithStandardActions())
		}},
		{"sharded", func(t *testing.T) promises.Engine {
			return openLocal(t, "w", 10, promises.WithShards(4), promises.WithStandardActions())
		}},
		{"remote", func(t *testing.T) promises.Engine {
			return serveEngine(t, openLocal(t, "w", 10), "c")
		}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			ctx := context.Background()
			eng := shape.mk(t)

			// Grant, over-ask (rejection with counter), batch, check,
			// named action with atomic release — one script, any engine.
			resp, err := eng.Execute(ctx, promises.Request{
				Client: "c",
				PromiseRequests: []promises.PromiseRequest{{
					Predicates: []promises.Predicate{promises.Quantity("w", 6)},
					Duration:   time.Minute,
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			held := resp.Promises[0]
			if !held.Accepted {
				t.Fatalf("grant rejected: %s", held.Reason)
			}

			resp, err = eng.Execute(ctx, promises.Request{
				Client: "c",
				PromiseRequests: []promises.PromiseRequest{{
					Predicates: []promises.Predicate{promises.Quantity("w", 9)},
				}},
			})
			if err != nil {
				t.Fatal(err)
			}
			over := resp.Promises[0]
			if over.Accepted {
				t.Fatal("over-ask accepted")
			}
			if len(over.Counter) != 1 || over.Counter[0].Qty != 4 {
				t.Fatalf("counter-offer = %v, want 4 of w", over.Counter)
			}

			batch, err := eng.GrantBatch(ctx, "c", []promises.PromiseRequest{
				{Predicates: []promises.Predicate{promises.Quantity("w", 2)}},
				{Predicates: []promises.Predicate{promises.Quantity("w", 3)}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !batch[0].Accepted || batch[1].Accepted {
				t.Fatalf("batch = %+v (want grant, reject)", batch)
			}

			checks, err := eng.CheckBatch(ctx, "c", []string{held.PromiseID, batch[0].PromiseID, "prm-nope"})
			if err != nil {
				t.Fatal(err)
			}
			if checks[0] != nil || checks[1] != nil {
				t.Fatalf("live promises report %v / %v", checks[0], checks[1])
			}
			if !errors.Is(checks[2], promises.ErrPromiseNotFound) {
				t.Fatalf("ghost check = %v", checks[2])
			}

			// The named action runs under the environment and releases it
			// atomically — the closure-free form every engine serves.
			resp, err = eng.Execute(ctx, promises.Request{
				Client:       "c",
				Env:          []promises.EnvEntry{{PromiseID: held.PromiseID, Release: true}},
				ActionName:   "adjust-pool",
				ActionParams: map[string]string{"pool": "w", "delta": "-6"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if resp.ActionErr != nil {
				t.Fatalf("purchase: %v", resp.ActionErr)
			}
			if s, _ := resp.ActionResult.(string); s != "4" {
				t.Fatalf("stock after purchase = %v, want 4", resp.ActionResult)
			}

			if err := eng.Release(ctx, "c", batch[0].PromiseID); err != nil {
				t.Fatal(err)
			}
			if err := eng.Release(ctx, "c", batch[0].PromiseID); !errors.Is(err, promises.ErrPromiseReleased) {
				t.Fatalf("double release = %v", err)
			}

			st := eng.Stats()
			if st.Grants < 2 {
				t.Fatalf("stats grants = %d", st.Grants)
			}
			rep, err := eng.Audit()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Healthy() {
				t.Fatalf("audit: %s", rep)
			}
		})
	}
}

// runDelegationChain is the one piece of delegation-chain code under test:
// it takes the upstream engine as a parameter, so swapping a local supplier
// for a remote one is a constructor change at the caller — zero changes
// here. It returns the merchant-side grant and the delegated quantity
// actually recorded.
func runDelegationChain(t *testing.T, upstream promises.Engine) (granted bool, delegated int64) {
	t.Helper()
	ctx := context.Background()
	supplier := &promises.EngineSupplier{E: upstream, Client: "merchant"}
	merchant := openLocal(t, "widgets", 3, promises.WithSuppliers(map[string]promises.Supplier{
		"widgets": supplier,
	}))

	resp, err := merchant.Execute(ctx, promises.Request{
		Client: "customer",
		PromiseRequests: []promises.PromiseRequest{{
			Predicates: []promises.Predicate{promises.Quantity("widgets", 8)},
			Duration:   time.Minute,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := resp.Promises[0]
	if !pr.Accepted {
		return false, 0
	}
	info, err := merchant.(inspector).PromiseInfo(pr.PromiseID)
	if err != nil {
		t.Fatal(err)
	}
	// Ship the backorder through the supplier, then release the local part.
	if info.DelegatedQty[0] > 0 {
		if err := supplier.ConsumePromise(ctx, info.DelegatedID[0], info.DelegatedQty[0]); err != nil {
			t.Fatalf("backorder shipment: %v", err)
		}
	}
	if err := merchant.Release(ctx, "customer", pr.PromiseID); err != nil {
		t.Fatal(err)
	}
	return true, info.DelegatedQty[0]
}

// TestDelegationChainLocalRemoteSwap is the acceptance test for supplier
// interchangeability: the same delegation-chain code runs against an
// in-process upstream engine and a remote daemon, and behaves identically —
// including the upstream stock drawn down by the shipped backorder.
func TestDelegationChainLocalRemoteSwap(t *testing.T) {
	// Local upstream: the distributor engine is in-process. It resolves
	// the standard actions so ConsumePromise's adjust-pool runs.
	localUp := openLocal(t, "widgets", 100, promises.WithStandardActions())
	grantedL, delegatedL := runDelegationChain(t, localUp)

	// Remote upstream: the same distributor shape behind HTTP.
	remoteBacking := openLocal(t, "widgets", 100)
	remoteUp := serveEngine(t, remoteBacking, "merchant")
	grantedR, delegatedR := runDelegationChain(t, remoteUp)

	if !grantedL || !grantedR {
		t.Fatalf("grants diverged: local=%v remote=%v", grantedL, grantedR)
	}
	if delegatedL != 5 || delegatedR != 5 {
		t.Fatalf("delegated quantities = %d/%d, want 5/5", delegatedL, delegatedR)
	}
	// Both upstreams shipped the same backorder.
	lvlL, err := promisesSeederLevel(localUp, "widgets")
	if err != nil {
		t.Fatal(err)
	}
	lvlR, err := promisesSeederLevel(remoteBacking, "widgets")
	if err != nil {
		t.Fatal(err)
	}
	if lvlL != 95 || lvlR != 95 {
		t.Fatalf("upstream stock = %d/%d, want 95/95", lvlL, lvlR)
	}
	// And no upstream promise leaked on either path.
	for name, up := range map[string]promises.Engine{"local": localUp, "remote": remoteBacking} {
		rep, err := up.Audit()
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Healthy() {
			t.Fatalf("%s upstream audit: %s", name, rep)
		}
		if list, _ := up.(inspector).ActivePromises(); len(list) != 0 {
			t.Fatalf("%s upstream leaked promises: %v", name, list)
		}
	}
}

func promisesSeederLevel(eng promises.Engine, pool string) (int64, error) {
	seeder, err := promises.Seed(eng)
	if err != nil {
		return 0, err
	}
	return seeder.PoolLevel(pool)
}

// TestEngineCancelledContext: the Engine contract's cancellation promise at
// the facade level — a dead context reaches no engine shape.
func TestEngineCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, shape := range []struct {
		name string
		eng  promises.Engine
	}{
		{"single", openLocal(t, "w", 5)},
		{"sharded", openLocal(t, "w", 5, promises.WithShards(4))},
	} {
		if _, err := shape.eng.Execute(ctx, promises.Request{
			Client:          "c",
			PromiseRequests: []promises.PromiseRequest{{Predicates: []promises.Predicate{promises.Quantity("w", 1)}}},
		}); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: Execute on dead context = %v", shape.name, err)
		}
		if st := shape.eng.Stats(); st.Grants != 0 {
			t.Fatalf("%s: grants = %d after cancelled call", shape.name, st.Grants)
		}
	}
}

// TestOpenOptionValidation pins Open's option conflicts.
func TestOpenOptionValidation(t *testing.T) {
	if _, err := promises.Open(promises.WithRemote("http://x"), promises.WithShards(4)); err == nil ||
		!strings.Contains(err.Error(), "cannot combine") {
		t.Fatalf("remote+shards = %v", err)
	}
	if _, err := promises.Open(promises.WithHTTPClient(nil)); err != nil {
		// nil http client is the default; only a non-nil one requires remote.
		t.Fatalf("nil http client: %v", err)
	}
	if _, err := promises.Open(promises.WithActions(nil), promises.WithStandardActions()); err != nil {
		// nil resolver is the default; only a real one conflicts.
		t.Fatal(err)
	}
	eng, err := promises.Open(promises.WithRemote("http://localhost:1"), promises.WithClientID("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := promises.Seed(eng); err == nil {
		t.Fatal("remote engine must not seed locally")
	}
}
