// Package repro_bench exposes the evaluation workloads of EXPERIMENTS.md as
// testing.B benchmarks — one benchmark family per experiment id (E1–E11).
// cmd/promise-bench prints the corresponding tables; these benches give
// per-operation costs for the same code paths.
//
// Run with: go test -bench=. -benchmem
package repro_bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/matching"
	"repro/internal/predicate"
	"repro/internal/protocol"
	"repro/internal/resource"
	"repro/internal/service"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/promises"
)

func benchWorld(b *testing.B, pools map[string]int64, cfg core.Config) *core.Manager {
	b.Helper()
	m, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tx := m.Store().Begin(txn.Block)
	for pool, qty := range pools {
		if err := m.Resources().CreatePool(tx, pool, qty, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkE1 — full order (secure, hold, purchase) per regime and hold
// time; the promise rows should stay flat per-op while the locking rows pay
// serialization under -cpu parallelism.
func BenchmarkE1(b *testing.B) {
	holds := []time.Duration{0, time.Millisecond}
	for _, hold := range holds {
		think := func() {}
		if hold > 0 {
			h := hold
			think = func() { time.Sleep(h) }
		}
		b.Run(fmt.Sprintf("locking/hold=%s", hold), func(b *testing.B) {
			store := txn.NewStore()
			rm, err := txnResource(store)
			if err != nil {
				b.Fatal(err)
			}
			bl := baseline.NewLocking(store, rm)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := bl.RunOrder("w", 1, think); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
		b.Run(fmt.Sprintf("promises/hold=%s", hold), func(b *testing.B) {
			m := benchWorld(b, map[string]int64{"w": 1 << 40}, core.Config{})
			po := baseline.NewPromiseOrders(m)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := po.RunOrder("w", 1, think); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func newRM(store *txn.Store) (*resource.Manager, error) {
	return resource.NewManager(store)
}

func txnResource(store *txn.Store) (*resource.Manager, error) {
	r, err := newRM(store)
	if err != nil {
		return nil, err
	}
	tx := store.Begin(txn.Block)
	if err := r.CreatePool(tx, "w", 1<<40, nil); err != nil {
		_ = tx.Abort()
		return nil, err
	}
	return r, tx.Commit()
}

// BenchmarkE2 — grant+release cycle on one pool (the §3.1 concurrency
// claim); run with -cpu 1,4,16 to see scaling.
func BenchmarkE2(b *testing.B) {
	m := benchWorld(b, map[string]int64{"p": 1 << 40}, core.Config{})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := m.Execute(bg, core.Request{
				Client: "c",
				PromiseRequests: []core.PromiseRequest{{
					Predicates: []core.Predicate{core.Quantity("p", 1)},
				}},
			})
			if err != nil {
				b.Error(err)
				return
			}
			if _, err := m.Execute(bg, core.Request{
				Client: "c",
				Env:    []core.EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}},
			}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE3 — one secured order end to end under the two regimes.
func BenchmarkE3(b *testing.B) {
	b.Run("check-then-act", func(b *testing.B) {
		store := txn.NewStore()
		rm, err := txnResource(store)
		if err != nil {
			b.Fatal(err)
		}
		cta := baseline.NewCheckThenAct(store, rm)
		for i := 0; i < b.N; i++ {
			if _, err := cta.RunOrder("w", 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("promises", func(b *testing.B) {
		m := benchWorld(b, map[string]int64{"w": 1 << 40}, core.Config{})
		po := baseline.NewPromiseOrders(m)
		for i := 0; i < b.N; i++ {
			if _, err := po.RunOrder("w", 1, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4 — cyclic two-resource order per regime (promises never
// deadlock; locking pays detection+retry under -cpu parallelism).
func BenchmarkE4(b *testing.B) {
	pools := map[string]int64{"a": 1 << 40, "b": 1 << 40}
	b.Run("locking", func(b *testing.B) {
		store := txn.NewStore()
		rm, err := newRM(store)
		if err != nil {
			b.Fatal(err)
		}
		tx := store.Begin(txn.Block)
		for pool, qty := range pools {
			if err := rm.CreatePool(tx, pool, qty, nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		bl := baseline.NewLocking(store, rm)
		var flip int64
		b.RunParallel(func(pb *testing.PB) {
			order := []string{"a", "b"}
			if flip%2 == 1 {
				order = []string{"b", "a"}
			}
			flip++
			for pb.Next() {
				if _, err := bl.RunMultiOrder(order, 1, nil); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("promises", func(b *testing.B) {
		m := benchWorld(b, pools, core.Config{})
		po := baseline.NewPromiseOrders(m)
		var flip int64
		b.RunParallel(func(pb *testing.PB) {
			order := []string{"a", "b"}
			if flip%2 == 1 {
				order = []string{"b", "a"}
			}
			flip++
			for pb.Next() {
				if _, err := po.RunMultiOrder(order, 1, nil); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkE5 — grant+release per view with a populated promise table.
func BenchmarkE5(b *testing.B) {
	const outstanding = 500
	b.Run("anonymous", func(b *testing.B) {
		m := benchWorld(b, map[string]int64{"p": 1 << 40}, core.Config{DefaultDuration: time.Hour})
		for i := 0; i < outstanding; i++ {
			mustGrant(b, m, core.Quantity("p", 1))
		}
		b.ResetTimer()
		grantReleaseLoop(b, m, func() core.Predicate { return core.Quantity("p", 1) })
	})
	b.Run("named", func(b *testing.B) {
		m := benchWorld(b, nil, core.Config{DefaultDuration: time.Hour})
		tx := m.Store().Begin(txn.Block)
		for i := 0; i < outstanding+1; i++ {
			if err := m.Resources().CreateInstance(tx, fmt.Sprintf("i%06d", i), nil); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < outstanding; i++ {
			mustGrant(b, m, core.Named(fmt.Sprintf("i%06d", i)))
		}
		b.ResetTimer()
		grantReleaseLoop(b, m, func() core.Predicate { return core.Named(fmt.Sprintf("i%06d", outstanding)) })
	})
	b.Run("property", func(b *testing.B) {
		m := benchWorld(b, nil, core.Config{DefaultDuration: time.Hour})
		tx := m.Store().Begin(txn.Block)
		for i := 0; i < outstanding+1; i++ {
			props := map[string]predicate.Value{"slot": predicate.Int(int64(i))}
			if err := m.Resources().CreateInstance(tx, fmt.Sprintf("r%06d", i), props); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < outstanding; i++ {
			mustGrant(b, m, core.MustProperty("slot >= 0"))
		}
		b.ResetTimer()
		grantReleaseLoop(b, m, func() core.Predicate { return core.MustProperty("slot >= 0") })
	})
}

func mustGrant(b *testing.B, m *core.Manager, pred core.Predicate) string {
	b.Helper()
	resp, err := m.Execute(bg, core.Request{Client: "seed", PromiseRequests: []core.PromiseRequest{{
		Predicates: []core.Predicate{pred},
	}}})
	if err != nil {
		b.Fatal(err)
	}
	if !resp.Promises[0].Accepted {
		b.Fatalf("seed grant rejected: %s", resp.Promises[0].Reason)
	}
	return resp.Promises[0].PromiseID
}

func grantReleaseLoop(b *testing.B, m *core.Manager, pred func() core.Predicate) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		resp, err := m.Execute(bg, core.Request{Client: "probe", PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{pred()},
		}}})
		if err != nil {
			b.Fatal(err)
		}
		pr := resp.Promises[0]
		if !pr.Accepted {
			b.Fatalf("probe rejected: %s", pr.Reason)
		}
		if _, err := m.Execute(bg, core.Request{Client: "probe", Env: []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6 — raw Hopcroft–Karp on promise/instance graphs.
func BenchmarkE6(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(7))
			g := matching.NewGraph(n, n)
			for l := 0; l < n; l++ {
				g.AddEdge(l, l)
				for k := 0; k < 4; k++ {
					g.AddEdge(l, r.Intn(n))
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := g.SaturatesLeft(); !ok {
					b.Fatal("unsaturated")
				}
			}
		})
	}
}

// BenchmarkE7 — property grant under the two §5 techniques, on a pool with
// overlapping predicates already outstanding.
func BenchmarkE7(b *testing.B) {
	for _, mode := range []core.PropertyMode{core.MatchingMode, core.FirstFitMode} {
		name := "matching"
		if mode == core.FirstFitMode {
			name = "first-fit"
		}
		b.Run(name, func(b *testing.B) {
			m := benchWorld(b, nil, core.Config{PropertyMode: mode, DefaultDuration: time.Hour})
			tx := m.Store().Begin(txn.Block)
			for i := 0; i < 64; i++ {
				props := map[string]predicate.Value{
					"view":  predicate.Bool(i%2 == 0),
					"floor": predicate.Int(int64(3 + 2*(i%2))),
				}
				if err := m.Resources().CreateInstance(tx, fmt.Sprintf("room-%03d", i), props); err != nil {
					b.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 16; i++ {
				mustGrant(b, m, core.MustProperty("view = true"))
			}
			b.ResetTimer()
			grantReleaseLoop(b, m, func() core.Predicate { return core.MustProperty("floor = 5") })
		})
	}
}

// BenchmarkE8 — atomic modify (upgrade) round trip.
func BenchmarkE8(b *testing.B) {
	m := benchWorld(b, map[string]int64{"acct": 1 << 40}, core.Config{DefaultDuration: time.Hour})
	id := mustGrant(b, m, core.Quantity("acct", 100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := m.Execute(bg, core.Request{Client: "seed", PromiseRequests: []core.PromiseRequest{{
			Predicates: []core.Predicate{core.Quantity("acct", 100+int64(i%2))},
			Releases:   []string{id},
		}}})
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Promises[0].Accepted {
			b.Fatalf("upgrade rejected: %s", resp.Promises[0].Reason)
		}
		id = resp.Promises[0].PromiseID
	}
}

// BenchmarkE9 — the price of the §8 post-action check (and its ablation).
func BenchmarkE9(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "post-check-on"
		if disable {
			name = "post-check-off"
		}
		b.Run(name, func(b *testing.B) {
			m := benchWorld(b, map[string]int64{"p": 1 << 40}, core.Config{
				DisablePostCheck: disable, DefaultDuration: time.Hour,
			})
			for i := 0; i < 100; i++ {
				mustGrant(b, m, core.Quantity("p", 1))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := m.Execute(bg, core.Request{
					Client: "c",
					Action: func(ac *core.ActionContext) (any, error) {
						_, err := ac.Resources.AdjustPool(ac.Tx, "p", -1)
						return nil, err
					},
				})
				if err != nil || resp.ActionErr != nil {
					b.Fatalf("%v %v", err, resp.ActionErr)
				}
			}
		})
	}
}

// BenchmarkE10 — envelope codec and HTTP round trips (piggybacked vs
// separate purchase+release).
func BenchmarkE10(b *testing.B) {
	b.Run("codec", func(b *testing.B) {
		env := &protocol.Envelope{Header: protocol.Header{
			Client: "c",
			Promise: &protocol.PromiseHeader{Requests: []protocol.WireRequest{{
				ID:         "r1",
				Predicates: []protocol.WirePredicate{{View: "anonymous", Pool: "w", Qty: 5}},
			}}},
		}}
		var buf bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := protocol.Encode(&buf, env); err != nil {
				b.Fatal(err)
			}
			if _, err := protocol.Decode(bytes.NewReader(buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http-piggybacked", func(b *testing.B) {
		c, _ := benchHTTP(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 1)}, time.Hour)
			if err != nil || !pr.Accepted {
				b.Fatalf("%v %v", pr, err)
			}
			if _, err := c.Invoke(bg, []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
				"adjust-pool", map[string]string{"pool": "w", "delta": "-1"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("http-separate", func(b *testing.B) {
		c, _ := benchHTTP(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pr, err := c.RequestPromise(bg, []core.Predicate{core.Quantity("w", 1)}, time.Hour)
			if err != nil || !pr.Accepted {
				b.Fatalf("%v %v", pr, err)
			}
			if _, err := c.Invoke(bg, []core.EnvEntry{{PromiseID: pr.PromiseID}},
				"adjust-pool", map[string]string{"pool": "w", "delta": "-1"}); err != nil {
				b.Fatal(err)
			}
			if err := c.Release(bg, "", pr.PromiseID); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchHTTP(b *testing.B) (*transport.Client, *core.Manager) {
	b.Helper()
	m := benchWorld(b, map[string]int64{"w": 1 << 40}, core.Config{DefaultDuration: time.Hour})
	reg := service.NewRegistry()
	service.RegisterStandard(reg)
	srv := httptest.NewServer(transport.NewServer(m, reg).Handler())
	b.Cleanup(srv.Close)
	return &transport.Client{BaseURL: srv.URL, Client: "c"}, m
}

// BenchmarkE11 — delegated grant+release across supplier chains.
func BenchmarkE11(b *testing.B) {
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			managers := make([]*promises.Manager, depth+1)
			managers[depth] = benchWorld(b, map[string]int64{"w": 1 << 40}, core.Config{DefaultDuration: time.Hour})
			for i := depth - 1; i >= 0; i-- {
				managers[i] = benchWorld(b, map[string]int64{"w": 0}, core.Config{
					DefaultDuration: time.Hour,
					Suppliers: map[string]core.Supplier{
						"w": &core.ManagerSupplier{M: managers[i+1], Client: fmt.Sprintf("tier-%d", i)},
					},
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := managers[0].Execute(bg, core.Request{Client: "c", PromiseRequests: []core.PromiseRequest{{
					Predicates: []core.Predicate{core.Quantity("w", 5)},
				}}})
				if err != nil {
					b.Fatal(err)
				}
				pr := resp.Promises[0]
				if !pr.Accepted {
					b.Fatalf("rejected: %s", pr.Reason)
				}
				if _, err := managers[0].Execute(bg, core.Request{
					Client: "c",
					Env:    []core.EnvEntry{{PromiseID: pr.PromiseID, Release: true}},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12 — sharded vs serialized promise manager under parallel
// grant/release load through the public API. Workers each own one pool;
// with shards > 1 they stripe across stores and scale with cores, while
// shards=1 serializes every request through one shard lock. Run with
// -cpu 8 for the headline ratio.
func BenchmarkE12(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, err := promises.NewSharded(promises.ShardedConfig{Shards: shards, DefaultDuration: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			const pools = 32
			names := make([]string, pools)
			for i := range names {
				names[i] = fmt.Sprintf("pool-%d", i)
				if err := s.CreatePool(names[i], 1<<40, nil); err != nil {
					b.Fatal(err)
				}
			}
			var next atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := next.Add(1)
				pool := names[int(id)%pools]
				client := fmt.Sprintf("c%d", id)
				for pb.Next() {
					resp, err := s.Execute(bg, core.Request{Client: client, PromiseRequests: []core.PromiseRequest{{
						Predicates: []core.Predicate{core.Quantity(pool, 1)},
					}}})
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := s.Execute(bg, core.Request{Client: client, Env: []core.EnvEntry{{PromiseID: resp.Promises[0].PromiseID, Release: true}}}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

var bg = context.Background()
